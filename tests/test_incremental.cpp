// Structural fingerprints, the decl dependency graph, and the incremental
// edit pipeline.
//
// The load-bearing guarantees:
//
//   * frontend::structural_hash is whitespace/comment/formatting-INsensitive
//     and decl-content/decl-order-SENSITIVE (the cache.hpp contract);
//   * sema::plan_recompile dirties exactly the edited decls plus their
//     transitive dependents (and nothing it cannot prove clean);
//   * CompilerDriver::recompile produces artifacts byte-identical to a cold
//     compile of the edited source for every backend — including the
//     interpreter's observable runtime state — across all ten paper apps,
//     while StageRecord::decls_reused proves the reuse actually happened;
//   * the ArtifactCache serves formatting variants as plain hits (memory
//     and disk layers);
//   * SweepEngine::fit bisects the smallest fitting resource model.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "core/backends.hpp"
#include "core/cache.hpp"
#include "core/sweep.hpp"
#include "frontend/fingerprint.hpp"
#include "frontend/parser.hpp"
#include "frontend/printer.hpp"
#include "interp/runtime.hpp"
#include "pisa/switch.hpp"
#include "sema/depgraph.hpp"
#include "sim/simulator.hpp"

namespace lucid {
namespace {

using frontend::DeclFingerprint;
using frontend::DeclKind;
using frontend::Program;

BackendRegistry& test_registry() {
  static BackendRegistry registry = [] {
    BackendRegistry r;
    register_default_backends(r);
    return r;
  }();
  return registry;
}

DriverOptions app_options(const apps::AppSpec& spec) {
  DriverOptions opts;
  opts.program_name = spec.key;
  return opts;
}

Program parse_ok(const std::string& source) {
  DiagnosticEngine diags{source};
  Program p = frontend::Parser::parse(source, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  return p;
}

/// A formatting-only variant: leading/trailing comments, a block comment,
/// and trailing spaces on every line. Parses to the identical program.
std::string ws_variant(const std::string& source) {
  std::string out = "// reformatted variant\n/* block\n   comment */\n";
  for (const char c : source) {
    if (c == '\n') out += "  \n";
    else out += c;
  }
  out += "\n// trailing comment\n";
  return out;
}

/// Inserts a harmless statement at the top of the first handler body: a
/// genuine structural edit confined to one decl.
std::string edit_first_handler(const std::string& source) {
  const std::size_t h = source.find("handle ");
  EXPECT_NE(h, std::string::npos);
  const std::size_t brace = source.find('{', h);
  EXPECT_NE(brace, std::string::npos);
  std::string out = source;
  out.insert(brace + 1, " int __zz_edit = 1 + 2; ");
  return out;
}

std::string diag_transcript(const Compilation& comp) {
  std::string out;
  for (const Diagnostic& d : comp.diags().all()) {
    out += std::string(severity_name(d.severity)) + "|" + d.code + "|" +
           d.message + "\n";
  }
  return out;
}

/// Deterministic interpreter run fingerprint (register cells + counters);
/// mirrors the helper in test_sweep.cpp.
std::string interp_fingerprint(const ConstCompilationPtr& comp) {
  sim::Simulator simulator;
  pisa::SwitchConfig sc;
  sc.id = 1;
  pisa::Switch sw(simulator, sc);
  sched::EventScheduler node(sw, {});
  interp::Runtime runtime(comp, node);

  int salt = 1;
  for (const ir::EventInfo& ev : comp->ir().events) {
    if (!ev.has_handler) continue;
    for (int round = 0; round < 3; ++round) {
      std::vector<interp::Value> args;
      args.reserve(ev.params.size());
      for (std::size_t p = 0; p < ev.params.size(); ++p) {
        args.push_back((salt * 37 + static_cast<int>(p) * 11 + round) % 251);
      }
      runtime.inject(ev.name, std::move(args));
      ++salt;
    }
  }
  simulator.run_until(5 * sim::kMs);

  std::string fp;
  for (const ir::ArrayInfo& arr : comp->ir().arrays) {
    const pisa::RegisterArray* ra = runtime.array(arr.name);
    fp += arr.name + ":";
    for (std::int64_t i = 0; i < ra->size(); ++i) {
      fp += std::to_string(ra->get(i)) + ",";
    }
    fp += ";";
  }
  for (const auto& [ev, n] : runtime.stats().executions) {
    fp += "x " + ev + "=" + std::to_string(n) + ";";
  }
  for (const auto& [ev, n] : runtime.stats().generated) {
    fp += "g " + ev + "=" + std::to_string(n) + ";";
  }
  return fp;
}

/// A small program exercising every decl kind and a const -> fun -> handler
/// dependency chain.
constexpr const char* kChain =
    "const int LIMIT = 10;\n"
    "const int MASK = 15;\n"
    "global a = new Array<<32>>(16);\n"
    "global b = new Array<<32>>(16);\n"
    "memop plus(int cur, int x) { return cur + x; }\n"
    "fun int bump(int v) { return v + LIMIT; }\n"
    "event tick(int i);\n"
    "event tock(int i);\n"
    "handle tick(int i) { Array.set(a, i & MASK, plus, bump(i)); }\n"
    "handle tock(int i) { Array.set(b, i & MASK, plus, 1); }\n";

// ---------------------------------------------------------------------------
// Fingerprints and the canonical form
// ---------------------------------------------------------------------------

TEST(Fingerprint, FormattingVariantsShareTheStructuralHash) {
  for (const apps::AppSpec& spec : apps::all_apps()) {
    SCOPED_TRACE(spec.key);
    const Program original = parse_ok(spec.source);
    const Program variant = parse_ok(ws_variant(spec.source));
    EXPECT_EQ(frontend::fingerprint_program(original),
              frontend::fingerprint_program(variant));
    EXPECT_EQ(frontend::structural_hash(original),
              frontend::structural_hash(variant));
  }
}

TEST(Fingerprint, EditChangesExactlyTheEditedDecl) {
  const Program before = parse_ok(kChain);
  const Program after = parse_ok(edit_first_handler(kChain));
  const auto fps_before = frontend::fingerprint_program(before);
  const auto fps_after = frontend::fingerprint_program(after);
  ASSERT_EQ(fps_before.size(), fps_after.size());
  int changed = 0;
  for (std::size_t i = 0; i < fps_before.size(); ++i) {
    EXPECT_EQ(fps_before[i].kind, fps_after[i].kind);
    EXPECT_EQ(fps_before[i].name, fps_after[i].name);
    if (fps_before[i].hash != fps_after[i].hash) {
      ++changed;
      EXPECT_EQ(fps_after[i].kind, DeclKind::Handler);
      EXPECT_EQ(fps_after[i].name, "tick");
    }
  }
  EXPECT_EQ(changed, 1);
  EXPECT_NE(frontend::structural_hash(before),
            frontend::structural_hash(after));
}

TEST(Fingerprint, DeclOrderIsPartOfTheStructuralHash) {
  // Same decls, different order: every per-decl fingerprint is unchanged,
  // but the program key differs — declaration order is semantic (pipeline
  // stages for globals, wire ids for events).
  const std::string swapped =
      "const int MASK = 15;\n"
      "const int LIMIT = 10;\n" +
      std::string(kChain).substr(std::string(kChain).find("global a"));
  const Program original = parse_ok(kChain);
  const Program reordered = parse_ok(swapped);
  auto a = frontend::fingerprint_program(original);
  auto b = frontend::fingerprint_program(reordered);
  ASSERT_EQ(a.size(), b.size());
  const auto by_hash = [](const DeclFingerprint& x, const DeclFingerprint& y) {
    return x.hash < y.hash;
  };
  EXPECT_NE(frontend::structural_hash(original),
            frontend::structural_hash(reordered));
  std::sort(a.begin(), a.end(), by_hash);
  std::sort(b.begin(), b.end(), by_hash);
  EXPECT_EQ(a, b);  // the decl *set* is identical; only the order moved
}

TEST(Fingerprint, StreamingHashMatchesTheCanonicalPrintPreimage) {
  // fingerprint_decl streams bytes into FNV-1a without materializing the
  // canonical print; this pins the two code paths (fingerprint.cpp's
  // hash_* mirror vs printer.cpp) to each other for every decl of every
  // app. A divergence silently changes every cache key.
  for (const apps::AppSpec& spec : apps::all_apps()) {
    SCOPED_TRACE(spec.key);
    const Program p = parse_ok(spec.source);
    for (const auto& d : p.decls) {
      const std::string preimage =
          std::string(frontend::decl_kind_name(d->kind)) + '\x1f' + d->name +
          '\x1f' + frontend::canonical_print_decl(*d);
      EXPECT_EQ(frontend::fingerprint_decl(*d).hash, fnv1a64(preimage))
          << frontend::canonical_print_decl(*d);
    }
  }
}

TEST(Fingerprint, CanonicalPrintIsAFixedPoint) {
  for (const apps::AppSpec& spec : apps::all_apps()) {
    SCOPED_TRACE(spec.key);
    const Program parsed = parse_ok(spec.source);
    const std::string canonical = frontend::canonical_print_program(parsed);
    const Program reparsed = parse_ok(canonical);
    EXPECT_TRUE(frontend::program_equal(parsed, reparsed));
    EXPECT_EQ(frontend::canonical_print_program(reparsed), canonical);
    EXPECT_EQ(frontend::structural_hash(parsed),
              frontend::structural_hash(reparsed));
  }
}

// ---------------------------------------------------------------------------
// DeclDepGraph and plan_recompile
// ---------------------------------------------------------------------------

TEST(DepGraph, EdgesFollowReferences) {
  const Program p = parse_ok(kChain);
  const sema::DeclDepGraph g = sema::DeclDepGraph::build(p);
  ASSERT_EQ(g.nodes.size(), 10u);

  const auto index_of = [&](DeclKind kind, std::string_view name) {
    for (std::size_t i = 0; i < g.nodes.size(); ++i) {
      if (g.nodes[i].kind == kind && g.nodes[i].name == name) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };
  const int limit = index_of(DeclKind::Const, "LIMIT");
  const int bump = index_of(DeclKind::Fun, "bump");
  const int tick_h = index_of(DeclKind::Handler, "tick");
  const int tick_e = index_of(DeclKind::Event, "tick");
  const int arr_a = index_of(DeclKind::Global, "a");
  const int plus = index_of(DeclKind::Memop, "plus");

  const auto uses = [&](int from, int to) {
    const auto& u = g.nodes[static_cast<std::size_t>(from)].uses;
    return std::find(u.begin(), u.end(), to) != u.end();
  };
  EXPECT_TRUE(uses(bump, limit));     // fun body reads the const
  EXPECT_TRUE(uses(tick_h, bump));    // handler calls the fun
  EXPECT_TRUE(uses(tick_h, arr_a));   // handler touches the array
  EXPECT_TRUE(uses(tick_h, plus));    // handler names the memop
  EXPECT_TRUE(uses(tick_h, tick_e));  // handler is bound to its event
  EXPECT_FALSE(uses(bump, arr_a));

  // Editing LIMIT must transitively dirty bump and the tick handler.
  const std::vector<int> closure = g.dependents_closure({limit});
  const std::set<int> dirty(closure.begin(), closure.end());
  EXPECT_TRUE(dirty.count(limit));
  EXPECT_TRUE(dirty.count(bump));
  EXPECT_TRUE(dirty.count(tick_h));
  EXPECT_FALSE(dirty.count(plus));
  EXPECT_FALSE(dirty.count(arr_a));
}

TEST(Plan, FormattingOnlyEditIsIdentical) {
  const Program prev = parse_ok(kChain);
  const Program next = parse_ok(ws_variant(kChain));
  const sema::RecompilePlan plan = sema::plan_recompile(prev, next);
  EXPECT_TRUE(plan.identical);
  EXPECT_EQ(plan.reused(), 10u);
  EXPECT_EQ(plan.dirty(), 0u);
}

TEST(Plan, HandlerEditDirtiesOnlyThatHandler) {
  const Program prev = parse_ok(kChain);
  const Program next = parse_ok(edit_first_handler(kChain));
  const sema::RecompilePlan plan = sema::plan_recompile(prev, next);
  EXPECT_FALSE(plan.identical);
  EXPECT_EQ(plan.dirty(), 1u);
  for (std::size_t i = 0; i < next.decls.size(); ++i) {
    const bool is_tick_handler = next.decls[i]->kind == DeclKind::Handler &&
                                 next.decls[i]->name == "tick";
    EXPECT_EQ(plan.reuse_from[i] < 0, is_tick_handler) << i;
  }
}

TEST(Plan, ConstEditDirtiesTransitiveDependents) {
  std::string edited = kChain;
  const std::size_t at = edited.find("LIMIT = 10");
  ASSERT_NE(at, std::string::npos);
  edited.replace(at, 10, "LIMIT = 11");
  const Program prev = parse_ok(kChain);
  const Program next = parse_ok(edited);
  const sema::RecompilePlan plan = sema::plan_recompile(prev, next);
  std::set<std::string> dirty;
  for (std::size_t i = 0; i < next.decls.size(); ++i) {
    if (plan.reuse_from[i] < 0) {
      dirty.insert(std::string(frontend::decl_kind_name(
                       next.decls[i]->kind)) +
                   ":" + next.decls[i]->name);
    }
  }
  // LIMIT itself, the fun reading it, and the handler calling that fun —
  // nothing else.
  EXPECT_EQ(dirty, (std::set<std::string>{"const:LIMIT", "fun:bump",
                                          "handler:tick"}));
}

TEST(Plan, GlobalInsertionDirtiesShiftedGlobalsAndTheirUsers) {
  // Insert a new array before `b`: `a` keeps ordinal 0 (clean), `b` shifts
  // to ordinal 2 (dirty — its pipeline stage moved), and so does the tock
  // handler that touches it. `tick` (only touches `a`) stays clean.
  std::string edited = kChain;
  const std::size_t at = edited.find("global b");
  ASSERT_NE(at, std::string::npos);
  edited.insert(at, "global mid = new Array<<32>>(8);\n");
  const sema::RecompilePlan plan =
      sema::plan_recompile(parse_ok(kChain), parse_ok(edited));
  const Program next = parse_ok(edited);
  for (std::size_t i = 0; i < next.decls.size(); ++i) {
    SCOPED_TRACE(next.decls[i]->name);
    const std::string& name = next.decls[i]->name;
    const bool should_be_dirty =
        name == "mid" || name == "b" ||
        (next.decls[i]->kind == DeclKind::Handler && name == "tock");
    EXPECT_EQ(plan.reuse_from[i] < 0, should_be_dirty);
  }
}

TEST(Plan, EventReorderDirtiesHandlersOfShiftedEvents) {
  // Swapping the two event decls reassigns both wire ids: both handlers
  // (bound by name) must be dirtied even though no handler text changed.
  std::string edited = kChain;
  const std::size_t at = edited.find("event tick(int i);\nevent tock(int i);");
  ASSERT_NE(at, std::string::npos);
  edited.replace(at, std::string("event tick(int i);\nevent tock(int i);").size(),
                 "event tock(int i);\nevent tick(int i);");
  const sema::RecompilePlan plan =
      sema::plan_recompile(parse_ok(kChain), parse_ok(edited));
  const Program next = parse_ok(edited);
  for (std::size_t i = 0; i < next.decls.size(); ++i) {
    SCOPED_TRACE(next.decls[i]->name);
    const bool should_be_dirty =
        next.decls[i]->kind == DeclKind::Event ||
        next.decls[i]->kind == DeclKind::Handler;
    EXPECT_EQ(plan.reuse_from[i] < 0, should_be_dirty);
  }
}

TEST(Plan, DeletedDeclDirtiesItsReferencers) {
  // Remove the memop: both handlers name it, so both must re-check (and
  // now fail sema) even though their own text is unchanged.
  std::string edited = kChain;
  const std::size_t at =
      edited.find("memop plus(int cur, int x) { return cur + x; }\n");
  ASSERT_NE(at, std::string::npos);
  edited.erase(at,
               std::string("memop plus(int cur, int x) "
                           "{ return cur + x; }\n").size());
  const sema::RecompilePlan plan =
      sema::plan_recompile(parse_ok(kChain), parse_ok(edited));
  const Program next = parse_ok(edited);
  for (std::size_t i = 0; i < next.decls.size(); ++i) {
    SCOPED_TRACE(next.decls[i]->name);
    EXPECT_EQ(plan.reuse_from[i] < 0,
              next.decls[i]->kind == DeclKind::Handler);
  }
}

// ---------------------------------------------------------------------------
// CompilerDriver::recompile — differential equivalence over the paper apps
// ---------------------------------------------------------------------------

TEST(Recompile, FormattingEditReusesEverythingPastParse) {
  for (const apps::AppSpec& spec : apps::all_apps()) {
    SCOPED_TRACE(spec.key);
    const CompilerDriver driver(app_options(spec), &test_registry());
    const CompilationPtr prev = driver.run(spec.source, Stage::Layout);
    ASSERT_TRUE(prev->ok()) << prev->diags().render();

    const std::string variant = ws_variant(spec.source);
    const CompilationPtr rec = driver.recompile(prev, variant);
    ASSERT_TRUE(rec->ok()) << rec->diags().render();
    EXPECT_EQ(rec->source(), variant);

    // 0 stages re-run past Parse: Sema, Lower, and Layout are all inherited
    // from prev — by address, not by equivalence.
    for (const Stage s : {Stage::Sema, Stage::Lower, Stage::Layout}) {
      EXPECT_TRUE(rec->record(s).shared) << stage_name(s);
    }
    EXPECT_EQ(&rec->ast(), &prev->ast());
    EXPECT_EQ(&rec->ir(), &prev->ir());
    EXPECT_EQ(&rec->pipeline(), &prev->pipeline());
    EXPECT_GT(rec->record(Stage::Sema).decls_reused, 0);

    // Byte-identical to a cold compile of the reformatted source.
    const CompilationPtr cold = driver.run(variant, Stage::Layout);
    ASSERT_TRUE(cold->ok());
    for (const char* backend : {"p4", "ebpf"}) {
      SCOPED_TRACE(backend);
      const BackendArtifact a = driver.emit(cold, backend);
      const BackendArtifact b = driver.emit(rec, backend);
      ASSERT_TRUE(a.ok && b.ok);
      EXPECT_EQ(a.text, b.text);
      EXPECT_EQ(a.metrics, b.metrics);
    }
  }
}

TEST(Recompile, OneHandlerEditMatchesColdByteForByte) {
  for (const apps::AppSpec& spec : apps::all_apps()) {
    SCOPED_TRACE(spec.key);
    const CompilerDriver driver(app_options(spec), &test_registry());
    const CompilationPtr prev = driver.run(spec.source, Stage::Layout);
    ASSERT_TRUE(prev->ok()) << prev->diags().render();

    const std::string edited = edit_first_handler(spec.source);
    const CompilationPtr cold = driver.run(edited, Stage::Layout);
    ASSERT_TRUE(cold->ok()) << cold->diags().render();

    const CompilationPtr rec = driver.recompile(prev, edited);
    ASSERT_TRUE(driver.run_until(rec, Stage::Layout))
        << rec->diags().render();

    // The reuse actually happened: the dirty decl set is a strict subset.
    EXPECT_GT(rec->record(Stage::Sema).decls_reused, 0);
    EXPECT_FALSE(rec->record(Stage::Sema).shared);
    if (prev->ir().handlers.size() > 1) {
      EXPECT_GT(rec->record(Stage::Lower).decls_reused, 0);
    }

    // Byte-identical artifacts on both code-generating backends, identical
    // diagnostics, and identical interpreter behavior.
    for (const char* backend : {"p4", "ebpf"}) {
      SCOPED_TRACE(backend);
      const BackendArtifact a = driver.emit(cold, backend);
      const BackendArtifact b = driver.emit(rec, backend);
      ASSERT_TRUE(a.ok) << cold->diags().render();
      ASSERT_TRUE(b.ok) << rec->diags().render();
      EXPECT_EQ(a.text, b.text);
      EXPECT_EQ(a.metrics, b.metrics);
    }
    EXPECT_EQ(diag_transcript(*cold), diag_transcript(*rec));
    EXPECT_EQ(interp_fingerprint(cold), interp_fingerprint(rec));
  }
}

TEST(Plan, DeletedEventWithSurvivingHandlerDirtiesTheHandler) {
  // Regression: deletion is judged per (kind, name), not per name. Deleting
  // an event whose same-named handler survives leaves the *name* present,
  // but the handler's binding is gone — it must re-check (and fail sema).
  std::string edited = kChain;
  const std::size_t at = edited.find("event tock(int i);\n");
  ASSERT_NE(at, std::string::npos);
  edited.erase(at, std::string("event tock(int i);\n").size());
  const sema::RecompilePlan plan =
      sema::plan_recompile(parse_ok(kChain), parse_ok(edited));
  const Program next = parse_ok(edited);
  bool tock_handler_dirty = false;
  for (std::size_t i = 0; i < next.decls.size(); ++i) {
    if (next.decls[i]->kind == DeclKind::Handler &&
        next.decls[i]->name == "tock") {
      tock_handler_dirty = plan.reuse_from[i] < 0;
    }
  }
  EXPECT_TRUE(tock_handler_dirty);

  // End to end: the incremental recompile must reject the program exactly
  // like a cold compile does.
  const CompilerDriver driver({}, &test_registry());
  const CompilationPtr prev = driver.run(kChain, Stage::Layout);
  ASSERT_TRUE(prev->ok());
  const CompilationPtr cold = driver.run(edited, Stage::Layout);
  EXPECT_FALSE(cold->ok());
  const CompilationPtr rec = driver.recompile(prev, edited);
  EXPECT_FALSE(rec->ok());
  EXPECT_TRUE(rec->diags().has_code("sema-handler-without-event"));
}

TEST(Recompile, UntilBoundsHowDeepTheRecompileDrives) {
  // --stop-after must keep its meaning under --incremental-from: a
  // Parse-bounded recompile runs nothing past Parse (and skips the diff),
  // a Sema-bounded one stops before Lower.
  const CompilerDriver driver({}, &test_registry());
  const CompilationPtr prev = driver.run(kChain, Stage::Layout);
  ASSERT_TRUE(prev->ok());
  const std::string edited = edit_first_handler(kChain);

  const CompilationPtr parse_only =
      driver.recompile(prev, edited, Stage::Parse);
  EXPECT_TRUE(parse_only->succeeded(Stage::Parse));
  EXPECT_FALSE(parse_only->ran(Stage::Sema));

  const CompilationPtr sema_deep = driver.recompile(prev, edited, Stage::Sema);
  EXPECT_TRUE(sema_deep->succeeded(Stage::Sema));
  EXPECT_GT(sema_deep->record(Stage::Sema).decls_reused, 0);
  EXPECT_FALSE(sema_deep->ran(Stage::Lower));

  // A formatting-only edit bounded at Sema clones prev at Sema — not
  // deeper.
  const CompilationPtr ws_sema =
      driver.recompile(prev, ws_variant(kChain), Stage::Sema);
  EXPECT_TRUE(ws_sema->succeeded(Stage::Sema));
  EXPECT_TRUE(ws_sema->record(Stage::Sema).shared);
  EXPECT_FALSE(ws_sema->ran(Stage::Lower));
}

TEST(Recompile, EditIntroducingAnErrorIsCaught) {
  const CompilerDriver driver({}, &test_registry());
  const CompilationPtr prev = driver.run(kChain, Stage::Layout);
  ASSERT_TRUE(prev->ok());

  std::string bad = kChain;
  const std::size_t at = bad.find("Array.set(b, i & MASK, plus, 1);");
  ASSERT_NE(at, std::string::npos);
  bad.insert(at, "oops = 1; ");
  const CompilationPtr rec = driver.recompile(prev, bad);
  EXPECT_FALSE(rec->ok());
  EXPECT_TRUE(rec->diags().has_code("sema-undefined"));
  // The untouched decls were still reused on the way to the error.
  EXPECT_GT(rec->record(Stage::Sema).decls_reused, 0);
}

TEST(Recompile, FallsBackToColdWithoutAUsablePrev) {
  const CompilerDriver driver({}, &test_registry());
  const CompilationPtr broken =
      driver.run("event e();\nhandle e() { y = 1; }\n", Stage::Layout);
  ASSERT_FALSE(broken->ok());

  const CompilationPtr rec = driver.recompile(broken, kChain);
  ASSERT_TRUE(rec->ok()) << rec->diags().render();
  EXPECT_TRUE(rec->succeeded(Stage::Lower));
  EXPECT_EQ(rec->record(Stage::Sema).decls_reused, 0);
  EXPECT_FALSE(rec->record(Stage::Sema).shared);

  const CompilationPtr rec2 = driver.recompile(nullptr, kChain);
  ASSERT_TRUE(rec2->ok());
  EXPECT_TRUE(rec2->succeeded(Stage::Lower));
}

TEST(Recompile, DifferentModelReusesFrontEndButRerunsLayout) {
  const apps::AppSpec& spec = apps::app("SFW");
  const CompilerDriver tofino(app_options(spec), &test_registry());
  const CompilationPtr prev = tofino.run(spec.source, Stage::Layout);
  ASSERT_TRUE(prev->ok());

  DriverOptions small = app_options(spec);
  small.model.max_stages = 4;
  const CompilerDriver shrunk(small, &test_registry());
  const CompilationPtr rec =
      shrunk.recompile(prev, ws_variant(spec.source));
  ASSERT_TRUE(shrunk.run_until(rec, Stage::Layout) || true);
  // Front end inherited; Layout re-ran under the new model (prev's Layout
  // fingerprint does not match) and reached a different verdict.
  EXPECT_TRUE(rec->record(Stage::Lower).shared);
  EXPECT_FALSE(rec->record(Stage::Layout).shared);
  EXPECT_TRUE(prev->layout_stats().fits);
  EXPECT_FALSE(rec->pipeline().fits);
  // The model-independent analysis is still shared with prev, by address.
  EXPECT_EQ(&rec->layout_analysis(), &prev->layout_analysis());
}

TEST(Recompile, JsonTimingExposesDeclsReused) {
  const CompilerDriver driver({}, &test_registry());
  const CompilationPtr prev = driver.run(kChain, Stage::Layout);
  ASSERT_TRUE(prev->ok());
  const CompilationPtr rec =
      driver.recompile(prev, edit_first_handler(kChain));
  ASSERT_TRUE(driver.run_until(rec, Stage::Layout));
  const std::string json = rec->timing_report_json();
  EXPECT_NE(json.find("\"decls_reused\": 9"), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// ArtifactCache structural keying (the cache.hpp side-by-side contract)
// ---------------------------------------------------------------------------

TEST(StructuralCache, FormattingVariantsHitTheMemoryLayer) {
  ArtifactCache cache;  // keep_stage = Lower
  const CompilerDriver driver({}, &test_registry());
  const CompilationPtr first = cache.compile(driver, kChain);
  ASSERT_TRUE(first->ok());
  EXPECT_EQ(cache.stats().misses, 1u);

  // A reformatted variant is the same program: a hit sharing the master's
  // front end by address.
  bool hit = false;
  const CompilationPtr second =
      cache.compile(driver, ws_variant(kChain), &hit);
  ASSERT_TRUE(second->ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(&first->ast(), &second->ast());
  EXPECT_EQ(&first->ir(), &second->ir());

  // Same bytes again: also a hit, same entry.
  const CompilationPtr third = cache.compile(driver, kChain, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(cache.size(), 1u);
  (void)third;
}

TEST(StructuralCache, DeclEditAndDeclReorderAreMisses) {
  // The regression pinning the key's contract: whitespace/comment
  // INsensitive (above), decl-content and decl-order SENSITIVE (here).
  ArtifactCache cache;
  const CompilerDriver driver({}, &test_registry());
  (void)cache.compile(driver, kChain);
  EXPECT_EQ(cache.stats().misses, 1u);

  (void)cache.compile(driver, edit_first_handler(kChain));
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.size(), 2u);

  const std::string swapped =
      "const int MASK = 15;\n"
      "const int LIMIT = 10;\n" +
      std::string(kChain).substr(std::string(kChain).find("global a"));
  (void)cache.compile(driver, swapped);
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(StructuralCache, DiskLayerServesFormattingVariants) {
  const std::string dir =
      ::testing::TempDir() + "/lucid-structural-cache-" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  std::filesystem::remove_all(dir);

  const apps::AppSpec& spec = apps::app("SFW");
  const CompilerDriver driver(app_options(spec), &test_registry());
  const CompilationPtr comp = driver.run(spec.source, Stage::Layout);
  ASSERT_TRUE(comp->ok());
  const BackendArtifact emitted = driver.emit(comp, "p4");
  ASSERT_TRUE(emitted.ok);

  ArtifactCache cache(Stage::Lower, dir);
  cache.store_artifact(spec.source, comp->options(), emitted);
  EXPECT_EQ(cache.stats().disk_writes, 1u);

  // Loading under a reformatted source finds the same entry (structural
  // key), byte-identically.
  const std::string variant = ws_variant(spec.source);
  const auto loaded = cache.load_artifact(variant, comp->options(), "p4");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->text, emitted.text);

  // Storing the variant maps to the same file: still one disk entry.
  cache.store_artifact(variant, comp->options(), emitted);
  std::size_t entries = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);

  // An edited program is a different key: a miss.
  EXPECT_FALSE(cache
                   .load_artifact(edit_first_handler(spec.source),
                                  comp->options(), "p4")
                   .has_value());
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Auto-fitting
// ---------------------------------------------------------------------------

TEST(Fit, SpecParserAcceptsRangesAndRejectsMalformedSpecs) {
  std::string error;
  const auto spec = parse_fit_spec("stages=1..20;salus=2,4", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->search_field, "stages");
  EXPECT_EQ(spec->lo, 1);
  EXPECT_EQ(spec->hi, 20);
  ASSERT_EQ(spec->base.size(), 2u);
  EXPECT_EQ(spec->base[0].label, "salus=2");
  EXPECT_EQ(spec->base[1].label, "salus=4");

  EXPECT_FALSE(parse_fit_spec("", &error).has_value());
  EXPECT_FALSE(parse_fit_spec("stages=4,8", &error).has_value());
  EXPECT_NE(error.find("MIN..MAX"), std::string::npos);
  EXPECT_FALSE(parse_fit_spec("stages=1..4;salus=1..2", &error).has_value());
  EXPECT_NE(error.find("more than one"), std::string::npos);
  EXPECT_FALSE(parse_fit_spec("stages=9..3", &error).has_value());
  EXPECT_FALSE(parse_fit_spec("bogus=1..2", &error).has_value());
  EXPECT_FALSE(parse_fit_spec("stages=0..4", &error).has_value());
  EXPECT_FALSE(parse_fit_spec("stages=1..4;stages=2,3", &error).has_value());
}

TEST(Fit, BisectionMatchesALinearScan) {
  const apps::AppSpec& spec = apps::app("SFW");
  FitOptions opts;
  opts.spec = *parse_fit_spec("stages=1..20");
  opts.program_name = spec.key;
  opts.workers = 2;
  const FitReport report =
      SweepEngine(&test_registry()).fit(spec.source, opts);
  ASSERT_TRUE(report.ok) << report.str();
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_TRUE(report.all_fit);
  EXPECT_EQ(report.frontend_runs, 1);

  // Ground truth by exhaustive scan.
  int smallest = -1;
  for (int stages = 1; stages <= 20 && smallest < 0; ++stages) {
    DriverOptions dopts = app_options(spec);
    dopts.model.max_stages = stages;
    const CompilationPtr cold =
        CompilerDriver(dopts, &test_registry()).run(spec.source);
    ASSERT_TRUE(cold->ok());
    if (cold->layout_stats().fits) smallest = stages;
  }
  ASSERT_GT(smallest, 0);
  EXPECT_EQ(report.rows[0].fitted, smallest);
  // Bisection: at most 1 (range probe) + ceil(log2(20)) = 6 layout runs.
  EXPECT_LE(report.rows[0].probed.size(), 6u);
  EXPECT_EQ(report.rows[0].model.max_stages, smallest);
}

TEST(Fit, RangesWithoutAFitReportNone) {
  const apps::AppSpec& spec = apps::app("SFW");  // needs ~12 Tofino stages
  FitOptions opts;
  opts.spec = *parse_fit_spec("stages=1..4;salus=2,4");
  opts.program_name = spec.key;
  const FitReport report =
      SweepEngine(&test_registry()).fit(spec.source, opts);
  ASSERT_TRUE(report.ok) << report.str();
  EXPECT_FALSE(report.all_fit);
  ASSERT_EQ(report.rows.size(), 2u);
  for (const FitRow& row : report.rows) {
    EXPECT_EQ(row.fitted, -1);
    EXPECT_EQ(row.probed.size(), 1u);  // the hi probe settles it
  }
  EXPECT_NE(report.str().find("none"), std::string::npos);
}

TEST(Fit, FrontEndFailureShortCircuits) {
  FitOptions opts;
  opts.spec = *parse_fit_spec("stages=1..8");
  const FitReport report = SweepEngine(&test_registry())
                               .fit("event e();\nhandle e() { y = 1; }\n",
                                    opts);
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.frontend_diagnostics.empty());
}

}  // namespace
}  // namespace lucid
