// Unit tests for the effect-term algebra underlying the ordered type system.
#include <gtest/gtest.h>

#include "sema/effects.hpp"

namespace lucid::sema {
namespace {

TEST(EffectTerm, ConcreteValue) {
  EXPECT_EQ(EffectTerm::concrete(3).concrete_value(), 3);
  const EffectTerm t = EffectTerm::at(StageAtom::var_at(0));
  EXPECT_FALSE(t.concrete_value().has_value());
}

TEST(EffectTerm, PlusShiftsAllAtoms) {
  EffectTerm t = EffectTerm::concrete(2).join(EffectTerm::at(
      StageAtom::var_at(1, 1)));
  const EffectTerm t2 = t.plus(3);
  bool saw_concrete = false;
  bool saw_var = false;
  for (const auto& a : t2.atoms) {
    if (a.concrete()) {
      EXPECT_EQ(a.offset, 5);
      saw_concrete = true;
    } else {
      EXPECT_EQ(a.var, 1);
      EXPECT_EQ(a.offset, 4);
      saw_var = true;
    }
  }
  EXPECT_TRUE(saw_concrete);
  EXPECT_TRUE(saw_var);
}

TEST(EffectTerm, JoinKeepsMaxConcrete) {
  const EffectTerm t = EffectTerm::concrete(2).join(EffectTerm::concrete(5));
  EXPECT_EQ(t.concrete_value(), 5);
  EXPECT_EQ(t.atoms.size(), 1u);
}

TEST(EffectTerm, JoinMergesSameVariableByMaxOffset) {
  const EffectTerm a = EffectTerm::at(StageAtom::var_at(7, 1));
  const EffectTerm b = EffectTerm::at(StageAtom::var_at(7, 4));
  const EffectTerm j = a.join(b);
  ASSERT_EQ(j.atoms.size(), 1u);
  EXPECT_EQ(j.atoms[0].var, 7);
  EXPECT_EQ(j.atoms[0].offset, 4);
}

TEST(EffectTerm, JoinKeepsDistinctVariables) {
  const EffectTerm a = EffectTerm::at(StageAtom::var_at(1));
  const EffectTerm b = EffectTerm::at(StageAtom::var_at(2));
  EXPECT_EQ(a.join(b).atoms.size(), 2u);
}

TEST(EffectConstraint, ConcreteEvaluation) {
  EffectConstraint ok{EffectTerm::concrete(2), StageAtom::concrete_at(2),
                      "", {}};
  EXPECT_EQ(evaluate(ok), true);
  EffectConstraint bad{EffectTerm::concrete(3), StageAtom::concrete_at(2),
                       "", {}};
  EXPECT_EQ(evaluate(bad), false);
}

TEST(EffectConstraint, SymbolicIsUndecided) {
  EffectConstraint c{EffectTerm::at(StageAtom::var_at(0)),
                     StageAtom::concrete_at(5), "", {}};
  EXPECT_FALSE(evaluate(c).has_value());
  EffectConstraint c2{EffectTerm::concrete(1), StageAtom::var_at(3), "", {}};
  EXPECT_FALSE(evaluate(c2).has_value());
}

TEST(EffectSubst, SubstitutesArrayParamVariables) {
  EffectSubst subst;
  subst.atom_for_var.resize(4);
  subst.atom_for_var[2] = StageAtom::concrete_at(7);
  const EffectTerm t = EffectTerm::at(StageAtom::var_at(2, 1));
  const EffectTerm out = subst.apply(t);
  EXPECT_EQ(out.concrete_value(), 8);
}

TEST(EffectSubst, SubstitutesStartVariableWithWholeTerm) {
  EffectSubst subst;
  subst.start_var = 0;
  subst.start_term =
      EffectTerm::concrete(3).join(EffectTerm::at(StageAtom::var_at(9)));
  const EffectTerm t = EffectTerm::at(StageAtom::var_at(0, 2));
  const EffectTerm out = subst.apply(t);
  // Both atoms shifted by the +2 offset.
  bool concrete5 = false;
  bool var9plus2 = false;
  for (const auto& a : out.atoms) {
    if (a.concrete() && a.offset == 5) concrete5 = true;
    if (!a.concrete() && a.var == 9 && a.offset == 2) var9plus2 = true;
  }
  EXPECT_TRUE(concrete5);
  EXPECT_TRUE(var9plus2);
}

TEST(EffectSubst, RhsSubstitutionKeepsAtomAtomic) {
  EffectSubst subst;
  subst.atom_for_var.resize(1);
  subst.atom_for_var[0] = StageAtom::concrete_at(4);
  const StageAtom out = subst.apply_rhs(StageAtom::var_at(0));
  EXPECT_TRUE(out.concrete());
  EXPECT_EQ(out.offset, 4);
}

TEST(EffectSubst, UnboundVariableStaysSymbolic) {
  EffectSubst subst;
  const EffectTerm t = EffectTerm::at(StageAtom::var_at(5));
  const EffectTerm out = subst.apply(t);
  ASSERT_EQ(out.atoms.size(), 1u);
  EXPECT_EQ(out.atoms[0].var, 5);
}

TEST(StageAtom, Printing) {
  EXPECT_EQ(StageAtom::concrete_at(3).str(), "3");
  EXPECT_EQ(StageAtom::var_at(2).str(), "s2");
  EXPECT_EQ(StageAtom::var_at(2, 1).str(), "s2+1");
}

}  // namespace
}  // namespace lucid::sema
