// P4 backend tests: structural properties of the emitted Tofino-style P4 and
// the per-category LoC accounting that reproduces Figures 9/10.
#include <gtest/gtest.h>

#include "p4/emit.hpp"
#include "support/strings.hpp"

namespace lucid::p4 {
namespace {

constexpr const char* kFigure6 = R"(
const int TCP = 6;
const int UDP = 17;
global nexthops = new Array<<32>>(64);
global pcts = new Array<<32>>(96);
global hcts = new Array<<32>>(64);
memop plus(int cur, int x) { return cur + x; }
event count_pkt(int dst, int proto);
handle count_pkt(int dst, int proto) {
  int idx = Array.get(nexthops, dst);
  if (proto != TCP) {
    if (proto == UDP) { idx = idx + 32; } else { idx = idx + 64; }
  }
  Array.set(pcts, idx, plus, 1);
  if (proto == TCP) { Array.set(hcts, dst, plus, 1); }
}
)";

P4Program emit_ok(std::string_view src, std::string_view name = "test") {
  const CompilerDriver driver;
  const CompilationPtr r = driver.run(src);
  EXPECT_TRUE(r->ok()) << r->diags().render();
  return emit(*r, name);
}

TEST(P4Emit, ContainsAllStructuralSections) {
  const P4Program p = emit_ok(kFigure6);
  EXPECT_NE(p.text.find("header lucid_event_h"), std::string::npos);
  EXPECT_NE(p.text.find("parser IngressParser"), std::string::npos);
  EXPECT_NE(p.text.find("control Ingress"), std::string::npos);
  EXPECT_NE(p.text.find("control Egress"), std::string::npos);
  EXPECT_NE(p.text.find("Switch(pipe) main;"), std::string::npos);
}

TEST(P4Emit, EventHeaderPerEvent) {
  const P4Program p = emit_ok(kFigure6);
  EXPECT_NE(p.text.find("header ev_count_pkt_h"), std::string::npos);
  EXPECT_NE(p.text.find("state parse_ev_count_pkt"), std::string::npos);
}

TEST(P4Emit, RegistersAndRegisterActions) {
  const P4Program p = emit_ok(kFigure6);
  EXPECT_NE(p.text.find("Register<bit<32>, bit<32>>(64) reg_nexthops"),
            std::string::npos);
  EXPECT_NE(p.text.find("Register<bit<32>, bit<32>>(96) reg_pcts"),
            std::string::npos);
  // The plus memop appears inside RegisterAction bodies as cell + arg.
  EXPECT_NE(p.text.find("RegisterAction"), std::string::npos);
  EXPECT_NE(p.text.find("cell = cell + 1;"), std::string::npos);
}

TEST(P4Emit, ConditionalMemopEmitsIfElseInRegisterAction) {
  const P4Program p = emit_ok(
      "global ts = new Array<<32>>(8);\n"
      "memop newer(int cur, int t) {\n"
      "  if (cur < t) { return t; } else { return cur; }\n"
      "}\n"
      "event e(int t);\n"
      "handle e(int t) { Array.set(ts, 0, newer, t); }\n");
  EXPECT_NE(p.text.find("if (cell < ig_md.t)"), std::string::npos);
}

TEST(P4Emit, UpdateAppliesBothMemopsToOldValue) {
  // Array.update's parallel get+set: both memops must see the pre-update
  // cell value ("old"), matching the interpreter and the sALU semantics.
  const P4Program p = emit_ok(
      "global seqs = new Array<<32>>(8);\n"
      "memop mget(int cur, int x) { return cur; }\n"
      "memop maxm(int cur, int x) {\n"
      "  if (cur < x) { return x; } else { return cur; }\n"
      "}\n"
      "event e(int s);\n"
      "handle e(int s) {\n"
      "  int old = Array.update(seqs, 0, mget, 0, maxm, s);\n"
      "}\n");
  EXPECT_NE(p.text.find("bit<32> old = cell;"), std::string::npos);
  // The conditional set memop tests the old value...
  EXPECT_NE(p.text.find("if (old < ig_md.s)"), std::string::npos);
  // ...and the get memop returns it.
  EXPECT_NE(p.text.find("rv = old;"), std::string::npos);
}

TEST(P4Emit, HashMaskFoldsIntoHashUnit) {
  // `hash(...) & (2^n - 1)` must not spend an ALU op: it folds into the
  // hash unit's output width, so no "& 255" appears in any action body.
  const P4Program p = emit_ok(
      "global t = new Array<<32>>(256);\n"
      "event e(int a);\n"
      "handle e(int a) {\n"
      "  int idx = hash(9, a) & 255;\n"
      "  int v = Array.get(t, idx);\n"
      "}\n");
  EXPECT_EQ(p.text.find("& 255"), std::string::npos);
}

TEST(P4Emit, GuardRulesBecomeConstEntries) {
  const P4Program p = emit_ok(kFigure6);
  EXPECT_NE(p.text.find("const entries"), std::string::npos);
  // The UDP guard value 17 appears in some entry.
  EXPECT_NE(p.text.find("17"), std::string::npos);
  EXPECT_NE(p.text.find("const default_action"), std::string::npos);
}

TEST(P4Emit, DispatcherCopiesEventParams) {
  const P4Program p = emit_ok(kFigure6);
  EXPECT_NE(p.text.find("action dispatch_count_pkt()"), std::string::npos);
  EXPECT_NE(p.text.find("ig_md.dst = hdr.ev_count_pkt.dst;"),
            std::string::npos);
  EXPECT_NE(p.text.find("table event_dispatch"), std::string::npos);
}

TEST(P4Emit, GenerateSitesProduceSerializerBlocks) {
  const P4Program p = emit_ok(
      "event ping(int x);\n"
      "event pong(int x);\n"
      "handle ping(int x) {\n"
      "  generate pong(x);\n"
      "  generate Event.delay(ping(x), 1ms);\n"
      "}\n"
      "handle pong(int x) { int y = x; }\n");
  // Two generate sites -> two out-header pairs and clone handling.
  EXPECT_NE(p.text.find("hdr.gen_0"), std::string::npos);
  EXPECT_NE(p.text.find("hdr.gen_1"), std::string::npos);
  EXPECT_NE(p.text.find("egress_rid"), std::string::npos);
  EXPECT_NE(p.text.find("LUCID_SERIALIZE_GRP"), std::string::npos);
}

TEST(P4Emit, LocCategoriesAllPopulated) {
  const P4Program p = emit_ok(kFigure6);
  EXPECT_GT(p.loc_by_category.at(LineCategory::Header), 10u);
  EXPECT_GT(p.loc_by_category.at(LineCategory::Parser), 10u);
  EXPECT_GT(p.loc_by_category.at(LineCategory::Action), 5u);
  EXPECT_GT(p.loc_by_category.at(LineCategory::RegisterAction), 10u);
  EXPECT_GT(p.loc_by_category.at(LineCategory::Table), 10u);
  EXPECT_GT(p.loc_by_category.at(LineCategory::Control), 10u);
  EXPECT_EQ(p.total_loc(), [&] {
    std::size_t n = 0;
    for (const auto& [c, v] : p.loc_by_category) n += v;
    return n;
  }());
}

TEST(P4Emit, GeneratedP4IsMuchLongerThanLucid) {
  // The core of the paper's Figure 9/10 claim: the same program needs far
  // more P4 than Lucid.
  const std::size_t lucid_loc = lucid::count_loc(kFigure6);
  const P4Program p = emit_ok(kFigure6);
  EXPECT_GE(p.total_loc(), 4 * lucid_loc);
}

TEST(P4Emit, DeterministicOutput) {
  const P4Program a = emit_ok(kFigure6);
  const P4Program b = emit_ok(kFigure6);
  EXPECT_EQ(a.text, b.text);
}

}  // namespace
}  // namespace lucid::p4
