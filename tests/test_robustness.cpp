// Robustness: the front end must never crash — it reports diagnostics — on
// malformed, truncated, or adversarial input; and the scheduler handles
// degenerate configurations.
#include <gtest/gtest.h>

#include "core/driver.hpp"
#include "sched/scheduler.hpp"
#include "sim/rng.hpp"

namespace lucid {
namespace {

// ---------------------------------------------------------------------------
// Front end never crashes
// ---------------------------------------------------------------------------

class ParserRobustness : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserRobustness, MalformedInputYieldsDiagnosticsNotCrashes) {
  const CompilerDriver driver;
  const CompilationPtr r = driver.run(GetParam());
  EXPECT_FALSE(r->ok());
  EXPECT_TRUE(r->diags().has_errors());
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, ParserRobustness,
    ::testing::Values(
        "event",                                  // truncated declaration
        "handle e( {",                            // broken parameter list
        "global g = new Array<<>>(4);",           // missing width
        "global g = new Vector<<32>>(4);",        // not an Array
        "const int X = ;",                        // missing initializer
        "memop m(int a, int b) { return a + ; }", // broken expression
        "event e(); handle e() { if (1 { } }",    // unbalanced parens
        "event e(); handle e() { generate ; }",   // missing event
        "event e(); handle e() { int x = (((((1; }",  // deep unbalanced
        "}}}}{{{{",                                // garbage
        "event e(int x); handle e(int x) { x = }",
        "/* unterminated",                         // comment runs off
        "event e(); handle e() { Array.get(); }",  // no such array
        "fun f() { }",                             // missing return type
        "const group G = {1,;",                    // broken group
        "event e(); handle e() { y = 1; }"));      // undefined assign

TEST(ParserRobustness, RandomBytesNeverCrash) {
  // Fuzz-lite: printable-noise inputs of growing length. The only
  // requirement is "no crash, no hang"; diagnostics are expected.
  sim::Rng rng(1234);
  const std::string alphabet =
      "abcdefgh (){};=<>!&|+-*/%^~.,0123456789\n\t\"'";
  for (int trial = 0; trial < 200; ++trial) {
    std::string input;
    const int len = static_cast<int>(rng.uniform(1, 300));
    for (int i = 0; i < len; ++i) {
      input += alphabet[static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(alphabet.size()) - 1))];
    }
    const CompilerDriver driver;
    const CompilationPtr r = driver.run(input);
    // Random noise essentially never forms a valid program; either way,
    // the compiler returned instead of crashing.
    (void)r;
  }
  SUCCEED();
}

TEST(ParserRobustness, EmptyAndWhitespaceProgramsAreValid) {
  for (const char* src : {"", "   \n\t  ", "// just a comment\n"}) {
    const CompilerDriver driver;
    const CompilationPtr r = driver.run(src);
    EXPECT_TRUE(r->ok()) << r->diags().render();
    EXPECT_TRUE(r->ir().handlers.empty());
  }
}

TEST(ParserRobustness, DeeplyNestedIfsCompile) {
  std::string body = "int y = 0;\n";
  std::string open;
  std::string close;
  for (int i = 0; i < 24; ++i) {
    open += "if (x == " + std::to_string(i) + ") {\n";
    close += "}\n";
  }
  const std::string src = "event e(int x);\nhandle e(int x) {\n" + body +
                          open + "y = 1;\n" + close + "}\n";
  const CompilerDriver driver;
  const CompilationPtr r = driver.run(src);
  EXPECT_TRUE(r->ok()) << r->diags().render();
}

// ---------------------------------------------------------------------------
// Scheduler edge cases
// ---------------------------------------------------------------------------

TEST(SchedulerEdge, ZeroDelayEventIsImmediatelyProcessable) {
  sim::Simulator simulator;
  pisa::SwitchConfig sc;
  sc.id = 1;
  pisa::Switch sw(simulator, sc);
  sched::EventScheduler scheduler(sw, {});
  int executed = 0;
  scheduler.set_execute([&](const pisa::Packet&) { ++executed; });
  sched::GenEvent ev;
  ev.event_id = 0;
  ev.delay_ns = 0;
  scheduler.inject(ev);
  simulator.run_until(sim::kMs);
  EXPECT_EQ(executed, 1);
  EXPECT_EQ(scheduler.stats().delayed_enqueues, 0u);
}

TEST(SchedulerEdge, LocateAtSelfExecutesLocally) {
  sim::Simulator simulator;
  pisa::SwitchConfig sc;
  sc.id = 7;
  pisa::Switch sw(simulator, sc);
  sched::EventScheduler scheduler(sw, {});
  int executed = 0;
  scheduler.set_execute([&](const pisa::Packet&) { ++executed; });
  sched::GenEvent ev;
  ev.event_id = 0;
  ev.location = 7;  // explicitly located at self
  scheduler.inject(ev);
  simulator.run_until(sim::kMs);
  EXPECT_EQ(executed, 1);
  EXPECT_EQ(scheduler.stats().forwarded, 0u);
}

TEST(SchedulerEdge, MulticastWithEmptyGroupIsANoOp) {
  sim::Simulator simulator;
  pisa::SwitchConfig sc;
  sc.id = 1;
  pisa::Switch sw(simulator, sc);
  sched::EventScheduler scheduler(sw, {});
  int executed = 0;
  scheduler.set_execute([&](const pisa::Packet& p) {
    ++executed;
    if (p.event_id == 0) {
      sched::GenEvent out;
      out.event_id = 1;
      out.multicast = true;  // no members
      scheduler.generate(out);
    }
  });
  sched::GenEvent start;
  start.event_id = 0;
  scheduler.inject(start);
  simulator.run_until(sim::kMs);
  // Multicast to nobody: handled as a local unicast (clone-less), the
  // follow-up event still runs exactly once.
  EXPECT_EQ(executed, 2);
}

TEST(SchedulerEdge, ManySimultaneousInjectionsAllExecute) {
  sim::Simulator simulator;
  pisa::SwitchConfig sc;
  sc.id = 1;
  pisa::Switch sw(simulator, sc);
  sched::EventScheduler scheduler(sw, {});
  int executed = 0;
  scheduler.set_execute([&](const pisa::Packet&) { ++executed; });
  for (int i = 0; i < 10'000; ++i) {
    sched::GenEvent ev;
    ev.event_id = 0;
    scheduler.inject(ev);
  }
  simulator.run_until(10 * sim::kMs);
  EXPECT_EQ(executed, 10'000);
}

}  // namespace
}  // namespace lucid
