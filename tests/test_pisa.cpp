// PISA hardware model tests: register arrays, port serialization and
// saturation, recirculation accounting, the pausable delay queue, PFC
// stream, multicast engine, and the management-CPU latency model.
#include <gtest/gtest.h>

#include "pisa/switch.hpp"

namespace lucid::pisa {
namespace {

TEST(RegisterArray, MasksToWidth) {
  RegisterArray r("r", 8, 4);
  r.set(0, 0x1ff);
  EXPECT_EQ(r.get(0), 0xff);
  RegisterArray r32("r32", 32, 4);
  r32.set(1, 0x1'0000'0001);
  EXPECT_EQ(r32.get(1), 1);
}

TEST(RegisterArray, IndexWraps) {
  RegisterArray r("r", 32, 4);
  r.set(5, 42);  // wraps to 1
  EXPECT_EQ(r.get(1), 42);
  EXPECT_EQ(r.get(5), 42);
}

TEST(RegisterArray, FillResetsAll) {
  RegisterArray r("r", 32, 8);
  r.fill(7);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(r.get(i), 7);
}

TEST(Port, SerializationDelayMatchesRate) {
  sim::Simulator sim;
  Port port(sim, 100.0, 0);  // 100 Gb/s
  Packet p;                  // 64B frame -> 84B wire -> 672 bits -> 6.72 ns
  sim::Time delivered = -1;
  port.send(p, [&](Packet) { delivered = sim.now(); });
  sim.run();
  EXPECT_EQ(delivered, 6);  // truncated 6.72ns
}

TEST(Port, BackToBackPacketsQueue) {
  sim::Simulator sim;
  Port port(sim, 100.0, 0);
  std::vector<sim::Time> arrivals;
  for (int i = 0; i < 3; ++i) {
    port.send(Packet{}, [&](Packet) { arrivals.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(arrivals.size(), 3u);
  // Each subsequent packet waits for the previous serialization.
  EXPECT_EQ(arrivals[1] - arrivals[0], arrivals[2] - arrivals[1]);
  EXPECT_GT(arrivals[1], arrivals[0]);
}

TEST(Port, CountsWireBytes) {
  sim::Simulator sim;
  Port port(sim, 100.0, 0);
  port.send(Packet{}, [](Packet) {});
  sim.run();
  EXPECT_EQ(port.stats().packets, 1u);
  EXPECT_EQ(port.stats().wire_bytes, 84u);
}

Switch make_switch(sim::Simulator& sim, int id = 1) {
  SwitchConfig cfg;
  cfg.id = id;
  return Switch(sim, cfg);
}

TEST(Switch, ArraysAreNamedAndTyped) {
  sim::Simulator sim;
  Switch sw = make_switch(sim);
  sw.add_array("tbl", 16, 32);
  RegisterArray* r = sw.find_array("tbl");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->width(), 16);
  EXPECT_EQ(r->size(), 32);
  EXPECT_EQ(sw.find_array("missing"), nullptr);
}

TEST(Switch, InjectReachesIngressAfterPipelineLatency) {
  sim::Simulator sim;
  Switch sw = make_switch(sim);
  sim::Time arrival = -1;
  sw.set_ingress([&](Packet) { arrival = sim.now(); });
  sim.at(1000, [&] { sw.inject(Packet{}); });
  sim.run();
  EXPECT_EQ(arrival, 1000 + sw.config().pipeline_latency_ns);
}

TEST(Switch, RecirculationLoopCostsPipelinePlusPort) {
  sim::Simulator sim;
  Switch sw = make_switch(sim);
  std::vector<sim::Time> arrivals;
  sw.set_ingress([&](Packet p) {
    arrivals.push_back(sim.now());
    if (arrivals.size() < 3) sw.recirculate(std::move(p));
  });
  sw.inject(Packet{});
  sim.run();
  ASSERT_EQ(arrivals.size(), 3u);
  const sim::Time loop = arrivals[1] - arrivals[0];
  // pipeline (400) + recirc port latency (200) + serialization (~6) = ~606.
  EXPECT_GE(loop, 600);
  EXPECT_LE(loop, 620);
  EXPECT_EQ(sw.recirculations(), 2u);
}

TEST(Switch, DelayQueueHoldsUntilOpened) {
  sim::Simulator sim;
  Switch sw = make_switch(sim);
  int arrivals = 0;
  sw.set_ingress([&](Packet) { ++arrivals; });
  Packet p;
  sw.delay_enqueue(p);
  sw.delay_enqueue(p);
  sim.run();
  EXPECT_EQ(arrivals, 0);
  EXPECT_EQ(sw.delay_queue_depth(), 2u);
  sw.set_delay_queue_open(true);
  sim.run();
  EXPECT_EQ(arrivals, 2);
  EXPECT_EQ(sw.delay_queue_depth(), 0u);
}

TEST(Switch, PfcStreamOpensAndClosesQueue) {
  sim::Simulator sim;
  Switch sw = make_switch(sim);
  sw.set_ingress([](Packet) {});
  sw.start_pfc_stream(10 * sim::kUs, 2 * sim::kUs);
  // The unpause PFC needs ~206 ns to serialize and cross the recirc port.
  sim.run_until(300);
  EXPECT_TRUE(sw.delay_queue_open());
  // After the window (plus the pause frame's port traversal), closed again.
  sim.run_until(3 * sim::kUs);
  EXPECT_FALSE(sw.delay_queue_open());
  // Next period opens again.
  sim.run_until(10 * sim::kUs + 300);
  EXPECT_TRUE(sw.delay_queue_open());
  sw.stop_pfc_stream();
}

TEST(Switch, MulticastClonesPerMember) {
  sim::Simulator sim;
  Switch sw = make_switch(sim);
  Packet p;
  p.multicast = true;
  p.mcast_members = {2, 3, 5};
  p.args = {42};
  std::vector<std::int64_t> members;
  sw.multicast(p, [&](std::int64_t m, Packet clone) {
    members.push_back(m);
    EXPECT_EQ(clone.location, m);
    EXPECT_FALSE(clone.multicast);
    EXPECT_EQ(clone.args, p.args);
  });
  EXPECT_EQ(members, (std::vector<std::int64_t>{2, 3, 5}));
}

TEST(Cpu, InstallLatencyMatchesMantisEnvelope) {
  sim::Simulator sim;
  Switch sw = make_switch(sim);
  sim::Rng rng(3);
  double sum = 0;
  sim::Time min_seen = std::numeric_limits<sim::Time>::max();
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const sim::Time t = sw.cpu().sample_install(rng);
    min_seen = std::min(min_seen, t);
    sum += static_cast<double>(t);
  }
  // Minimum 12 us; average ~17.5 us (section 7.4).
  EXPECT_GE(min_seen, 12 * sim::kUs);
  EXPECT_NEAR(sum / n, 17.5 * sim::kUs, 500.0);
}

}  // namespace
}  // namespace lucid::pisa
