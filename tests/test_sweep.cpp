// Sweep-engine, artifact-cache, and differential-equivalence tests.
//
// The load-bearing guarantee: a compilation that reuses cached/cloned
// front-end artifacts is *observably identical* to a cold compile — same
// backend artifact bytes, same metrics, same diagnostics, and the same
// interpreter behavior — while the sweep engine pays for Parse/Sema/Lower
// exactly once across any number of resource-model variants.
//
// This file carries the "concurrency" CTest label: the debug-tsan preset
// (ThreadSanitizer) runs exactly these tests to race the worker pool.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "core/backends.hpp"
#include "core/cache.hpp"
#include "core/sweep.hpp"
#include "interp/runtime.hpp"
#include "pisa/switch.hpp"
#include "sim/simulator.hpp"

namespace lucid {
namespace {

BackendRegistry& test_registry() {
  static BackendRegistry registry = [] {
    BackendRegistry r;
    register_default_backends(r);
    return r;
  }();
  return registry;
}

DriverOptions app_options(const apps::AppSpec& spec) {
  DriverOptions opts;
  opts.program_name = spec.key;
  return opts;
}

/// Renders diagnostics into a comparable transcript (severity/code/message
/// in order).
std::string diag_transcript(const Compilation& comp) {
  std::string out;
  for (const Diagnostic& d : comp.diags().all()) {
    out += std::string(severity_name(d.severity)) + "|" + d.code + "|" +
           d.message + "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Grid-spec parser
// ---------------------------------------------------------------------------

TEST(SweepGrid, EmptySpecIsTheDefaultModel) {
  const auto variants = parse_sweep_grid("");
  ASSERT_TRUE(variants.has_value());
  ASSERT_EQ(variants->size(), 1u);
  EXPECT_EQ(variants->front().label, "tofino");
  EXPECT_EQ(variants->front().model.max_stages,
            opt::ResourceModel::tofino().max_stages);
}

TEST(SweepGrid, CrossProductOverTwoFields) {
  const auto variants = parse_sweep_grid("stages=8,12;salus=2,4");
  ASSERT_TRUE(variants.has_value());
  ASSERT_EQ(variants->size(), 4u);
  std::set<std::string> labels;
  for (const auto& v : *variants) labels.insert(v.label);
  EXPECT_TRUE(labels.count("stages=8,salus=2"));
  EXPECT_TRUE(labels.count("stages=12,salus=4"));
  for (const auto& v : *variants) {
    EXPECT_TRUE(v.model.max_stages == 8 || v.model.max_stages == 12);
    EXPECT_TRUE(v.model.salus_per_stage == 2 || v.model.salus_per_stage == 4);
    // Unlisted fields keep the Tofino defaults.
    EXPECT_EQ(v.model.rules_per_table,
              opt::ResourceModel::tofino().rules_per_table);
  }
}

TEST(SweepGrid, MalformedSpecsAreRejectedWithAMessage) {
  std::string error;
  EXPECT_FALSE(parse_sweep_grid("bogus=1", &error).has_value());
  EXPECT_NE(error.find("bogus"), std::string::npos);
  EXPECT_FALSE(parse_sweep_grid("stages=", &error).has_value());
  EXPECT_FALSE(parse_sweep_grid("stages=0", &error).has_value());
  EXPECT_FALSE(parse_sweep_grid("stages=abc", &error).has_value());
  EXPECT_FALSE(parse_sweep_grid("=4", &error).has_value());
  // A repeated field would silently overwrite earlier values.
  EXPECT_FALSE(parse_sweep_grid("stages=8,12;stages=4", &error).has_value());
  EXPECT_NE(error.find("more than once"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Differential equivalence: cached/cloned == cold, for every paper app
// ---------------------------------------------------------------------------

TEST(Differential, ClonedCompileProducesByteIdenticalArtifacts) {
  for (const apps::AppSpec& spec : apps::all_apps()) {
    SCOPED_TRACE(spec.key);
    const CompilerDriver driver(app_options(spec), &test_registry());

    const CompilationPtr cold = driver.run(spec.source, Stage::Layout);
    ASSERT_TRUE(cold->ok()) << cold->diags().render();

    ArtifactCache cache;  // keep_stage = Lower
    const CompilationPtr warmup = cache.compile(driver, spec.source);
    ASSERT_TRUE(warmup->ok());
    const CompilationPtr cached = cache.compile(driver, spec.source);
    ASSERT_TRUE(cached->ok());
    ASSERT_TRUE(cached->is_clone());
    EXPECT_TRUE(cached->record(Stage::Parse).shared);
    EXPECT_FALSE(cached->record(Stage::Layout).ran);
    ASSERT_TRUE(driver.run_until(cached, Stage::Layout));
    EXPECT_FALSE(cached->record(Stage::Layout).shared);

    // Identical layout results and middle-end diagnostics.
    EXPECT_EQ(cold->layout_stats().optimized_stages,
              cached->layout_stats().optimized_stages);
    EXPECT_EQ(cold->layout_stats().unoptimized_stages,
              cached->layout_stats().unoptimized_stages);
    EXPECT_EQ(cold->pipeline().array_stage, cached->pipeline().array_stage);
    EXPECT_EQ(diag_transcript(*cold), diag_transcript(*cached));

    // Byte-identical backend artifacts with identical metrics.
    for (const char* backend : {"p4", "ebpf", "interp"}) {
      SCOPED_TRACE(backend);
      const BackendArtifact a = driver.emit(cold, backend);
      const BackendArtifact b = driver.emit(cached, backend);
      ASSERT_TRUE(a.ok) << cold->diags().render();
      ASSERT_TRUE(b.ok) << cached->diags().render();
      EXPECT_EQ(a.text, b.text);
      EXPECT_EQ(a.metrics, b.metrics);
    }
    EXPECT_EQ(diag_transcript(*cold), diag_transcript(*cached));
  }
}

/// Builds a fresh simulated switch for `comp`, injects a deterministic event
/// schedule, and fingerprints the observable state: every register-array
/// cell plus the execution/generation counters.
std::string interp_fingerprint(const ConstCompilationPtr& comp) {
  sim::Simulator simulator;
  pisa::SwitchConfig sc;
  sc.id = 1;
  pisa::Switch sw(simulator, sc);
  sched::EventScheduler node(sw, {});
  interp::Runtime runtime(comp, node);

  int salt = 1;
  for (const ir::EventInfo& ev : comp->ir().events) {
    if (!ev.has_handler) continue;
    for (int round = 0; round < 3; ++round) {
      std::vector<interp::Value> args;
      args.reserve(ev.params.size());
      for (std::size_t p = 0; p < ev.params.size(); ++p) {
        args.push_back((salt * 37 + static_cast<int>(p) * 11 + round) % 251);
      }
      runtime.inject(ev.name, std::move(args));
      ++salt;
    }
  }
  simulator.run_until(5 * sim::kMs);

  std::string fp;
  for (const ir::ArrayInfo& arr : comp->ir().arrays) {
    const pisa::RegisterArray* ra = runtime.array(arr.name);
    fp += arr.name + ":";
    for (std::int64_t i = 0; i < ra->size(); ++i) {
      fp += std::to_string(ra->get(i)) + ",";
    }
    fp += ";";
  }
  for (const auto& [ev, n] : runtime.stats().executions) {
    fp += "x " + ev + "=" + std::to_string(n) + ";";
  }
  for (const auto& [ev, n] : runtime.stats().generated) {
    fp += "g " + ev + "=" + std::to_string(n) + ";";
  }
  return fp;
}

TEST(Differential, LayoutAnalysisIsSharedByAddressAcrossVariants) {
  // The StageRecord::shared-style proof for Phase A: every variant cloned
  // from one front end resolves to the *same* LayoutAnalysis object (address
  // equality, not equivalence), its Layout record carries analysis_shared,
  // and its pipeline pins that same object — while a cold compile owns its
  // analysis itself.
  const apps::AppSpec& spec = apps::app("SFW");
  const CompilerDriver driver(app_options(spec), &test_registry());
  const CompilationPtr base = driver.run(spec.source, Stage::Lower);
  ASSERT_TRUE(base->ok()) << base->diags().render();

  DriverOptions small = app_options(spec);
  small.model.max_stages = 8;
  DriverOptions tight = app_options(spec);
  tight.model.salus_per_stage = 2;

  // Before anyone computes it: a clone that triggers the donor's analysis
  // itself pays the cost, so its record must NOT claim analysis_shared.
  EXPECT_FALSE(base->analysis_ready());
  const CompilationPtr early = base->clone_from_stage(Stage::Lower, small);
  ASSERT_NE(early, nullptr);
  ASSERT_TRUE(CompilerDriver(small, &test_registry())
                  .run_until(early, Stage::Layout));
  EXPECT_FALSE(early->record(Stage::Layout).analysis_shared);
  EXPECT_TRUE(base->analysis_ready());  // ... but it landed on the donor

  const CompilationPtr v1 = base->clone_from_stage(Stage::Lower, small);
  const CompilationPtr v2 = base->clone_from_stage(Stage::Lower, tight);
  ASSERT_NE(v1, nullptr);
  ASSERT_NE(v2, nullptr);
  ASSERT_TRUE(CompilerDriver(small, &test_registry())
                  .run_until(v1, Stage::Layout));
  ASSERT_TRUE(CompilerDriver(tight, &test_registry())
                  .run_until(v2, Stage::Layout));

  EXPECT_EQ(v1->analysis_home(), base.get());
  EXPECT_EQ(v2->analysis_home(), base.get());
  EXPECT_EQ(&v1->layout_analysis(), &base->layout_analysis());
  EXPECT_EQ(&v2->layout_analysis(), &base->layout_analysis());
  EXPECT_TRUE(v1->record(Stage::Layout).analysis_shared);
  EXPECT_TRUE(v2->record(Stage::Layout).analysis_shared);
  EXPECT_EQ(v1->pipeline().analysis.get(), &base->layout_analysis());
  EXPECT_EQ(v2->pipeline().analysis.get(), &base->layout_analysis());

  // A cold compile computes (and owns) the analysis itself.
  const CompilationPtr cold = driver.run(spec.source, Stage::Layout);
  ASSERT_TRUE(cold->ok());
  EXPECT_EQ(cold->analysis_home(), cold.get());
  EXPECT_FALSE(cold->record(Stage::Layout).analysis_shared);
  EXPECT_NE(&cold->layout_analysis(), &base->layout_analysis());
}

TEST(Differential, InterpResultsMatchBetweenColdAndClonedCompiles) {
  for (const apps::AppSpec& spec : apps::all_apps()) {
    SCOPED_TRACE(spec.key);
    const CompilerDriver driver(app_options(spec), &test_registry());
    const CompilationPtr cold = driver.run(spec.source, Stage::Layout);
    ASSERT_TRUE(cold->ok()) << cold->diags().render();

    const CompilationPtr clone = cold->clone_from_stage(Stage::Lower);
    ASSERT_NE(clone, nullptr);
    // The interpreter binds at Lower; the clone never re-ran the front end.
    EXPECT_TRUE(clone->record(Stage::Lower).shared);
    EXPECT_EQ(interp_fingerprint(cold), interp_fingerprint(clone));
  }
}

// ---------------------------------------------------------------------------
// ArtifactCache behavior
// ---------------------------------------------------------------------------

constexpr const char* kCounter =
    "global cnt = new Array<<32>>(16);\n"
    "memop plus(int cur, int x) { return cur + x; }\n"
    "event bump(int i);\n"
    "handle bump(int i) { Array.set(cnt, i & 15, plus, 1); }\n";

TEST(ArtifactCache, HitsShareTheFrontEndByAddress) {
  ArtifactCache cache;
  const CompilerDriver driver({}, &test_registry());
  const CompilationPtr first = cache.compile(driver, kCounter);
  const CompilationPtr second = cache.compile(driver, kCounter);
  ASSERT_TRUE(first->ok());
  ASSERT_TRUE(second->ok());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  // Both are clones of one master: the same AST and IR objects, not copies.
  ASSERT_TRUE(first->is_clone());
  ASSERT_TRUE(second->is_clone());
  EXPECT_EQ(&first->ast(), &second->ast());
  EXPECT_EQ(&first->ir(), &second->ir());
  EXPECT_NE(first.get(), second.get());
}

TEST(ArtifactCache, SourceChangeMissesOptionsChangeInvalidates) {
  // keep_stage = Layout makes the resource model part of the fingerprint.
  ArtifactCache cache(Stage::Layout);
  const CompilerDriver tofino({}, &test_registry());
  (void)cache.compile(tofino, kCounter);
  EXPECT_EQ(cache.stats().misses, 1u);

  // Different bytes, same structure: a comment-only edit is a *hit* now
  // that the key is structural (PR 5); the entry count stays 1.
  bool hit = false;
  (void)cache.compile(tofino, std::string(kCounter) + "// edited\n", &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.size(), 1u);

  // A structurally different program: a plain miss, new entry.
  (void)cache.compile(tofino,
                      std::string(kCounter) + "event extra(int x);\n");
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().invalidations, 0u);
  EXPECT_EQ(cache.size(), 2u);

  // Same source, different model: the Layout-deep entry is stale.
  DriverOptions small;
  small.model.max_stages = 4;
  const CompilerDriver shrunk(small, &test_registry());
  const CompilationPtr recompiled = cache.compile(shrunk, kCounter);
  ASSERT_TRUE(recompiled->ok());
  EXPECT_EQ(recompiled->options().model.max_stages, 4);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.stats().misses, 3u);
}

TEST(ArtifactCache, LowerDeepEntriesShareTheAnalysisAcrossModelChanges) {
  // The Lower-deep options fingerprint covers only model-dependent inputs of
  // that depth — i.e. nothing — so switching resource models must neither
  // invalidate the entry nor fork the model-independent LayoutAnalysis.
  const apps::AppSpec& spec = apps::app("SFW");
  ArtifactCache cache;  // keep_stage = Lower
  const CompilerDriver tofino(app_options(spec), &test_registry());
  DriverOptions shrunk_opts = app_options(spec);
  shrunk_opts.model.max_stages = 4;
  shrunk_opts.model.salus_per_stage = 2;
  const CompilerDriver shrunk(shrunk_opts, &test_registry());

  const CompilationPtr a = cache.compile(tofino, spec.source);
  const CompilationPtr b = cache.compile(shrunk, spec.source);
  ASSERT_TRUE(tofino.run_until(a, Stage::Layout));
  ASSERT_TRUE(shrunk.run_until(b, Stage::Layout));
  EXPECT_EQ(cache.stats().invalidations, 0u);
  EXPECT_EQ(cache.stats().hits, 1u);
  // One analysis across both models, owned by the cached master. `a` ran
  // Layout first and so paid for the computation (analysis_shared false);
  // `b` inherited it ready-made.
  EXPECT_EQ(&a->layout_analysis(), &b->layout_analysis());
  EXPECT_EQ(a->analysis_home(), b->analysis_home());
  EXPECT_NE(a->analysis_home(), a.get());
  EXPECT_FALSE(a->record(Stage::Layout).analysis_shared);
  EXPECT_TRUE(b->record(Stage::Layout).analysis_shared);
  // Phase B still ran per model — the shrunk model cannot fit SFW's twelve
  // stages, the stock one can — so sharing Phase A leaks no Phase B state.
  EXPECT_TRUE(a->pipeline().fits);
  EXPECT_FALSE(b->pipeline().fits);
}

TEST(ArtifactCache, FailingSourcesAreNeverCached) {
  ArtifactCache cache;
  const CompilerDriver driver({}, &test_registry());
  const char* bad = "event e();\nhandle e() { y = 1; }\n";
  const CompilationPtr first = cache.compile(driver, bad);
  EXPECT_FALSE(first->ok());
  EXPECT_FALSE(first->is_clone());
  const CompilationPtr second = cache.compile(driver, bad);
  EXPECT_FALSE(second->ok());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.size(), 0u);
  // Diagnostics are reproduced identically on every retry.
  EXPECT_EQ(diag_transcript(*first), diag_transcript(*second));
}

TEST(ArtifactCache, DiskLayerRoundTripsArtifactsByteForByte) {
  const std::string dir =
      ::testing::TempDir() + "/lucid-cache-" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  std::filesystem::remove_all(dir);

  const apps::AppSpec& spec = apps::app("SFW");
  const CompilerDriver driver(app_options(spec), &test_registry());
  const CompilationPtr comp = driver.run(spec.source, Stage::Layout);
  ASSERT_TRUE(comp->ok());
  const BackendArtifact emitted = driver.emit(comp, "p4");
  ASSERT_TRUE(emitted.ok);

  ArtifactCache cache(Stage::Lower, dir);
  EXPECT_FALSE(
      cache.load_artifact(spec.source, comp->options(), "p4").has_value());
  cache.store_artifact(spec.source, comp->options(), emitted);
  const auto loaded = cache.load_artifact(spec.source, comp->options(), "p4");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->ok);
  EXPECT_EQ(loaded->text, emitted.text);
  EXPECT_EQ(loaded->metrics, emitted.metrics);
  EXPECT_EQ(loaded->backend, "p4");

  // Different program name (part of the Emit fingerprint) is a different key.
  DriverOptions renamed = comp->options();
  renamed.program_name = "other";
  EXPECT_FALSE(cache.load_artifact(spec.source, renamed, "p4").has_value());
  EXPECT_EQ(cache.stats().disk_hits, 1u);
  EXPECT_EQ(cache.stats().disk_writes, 1u);

  // Entries stamped by a different compiler build must read as misses: the
  // emitters may have changed, and stale output would mask that.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::ifstream in(entry.path(), std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    std::string contents = ss.str();
    const std::string stamp = "compiler " + std::string(kLucidVersion);
    const std::size_t at = contents.find(stamp);
    ASSERT_NE(at, std::string::npos);
    contents.replace(at, stamp.size(), "compiler 0.0.0-other");
    std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
    out << contents;
  }
  EXPECT_FALSE(
      cache.load_artifact(spec.source, comp->options(), "p4").has_value());

  // An entry truncated before its text record (interrupted store) must be a
  // miss, never a successful empty artifact.
  cache.store_artifact(spec.source, comp->options(), emitted);
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::ifstream in(entry.path(), std::ios::binary);
    std::string line, header;
    while (std::getline(in, line) && line.rfind("text ", 0) != 0) {
      header += line + "\n";
    }
    in.close();
    std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
    out << header;
  }
  EXPECT_FALSE(
      cache.load_artifact(spec.source, comp->options(), "p4").has_value());
  std::filesystem::remove_all(dir);
}

TEST(ArtifactCache, DiskKeysSeparateBackendsAndCompilerVersions) {
  // Regression: p4 and ebpf artifacts for the *same* source and options must
  // live under different disk keys — a shared key would let one backend's
  // output shadow the other's — and the key must pin the compiler version so
  // entries from older builds can never be served by filename collision.
  const std::string dir =
      ::testing::TempDir() + "/lucid-backend-keys-" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  std::filesystem::remove_all(dir);

  const apps::AppSpec& spec = apps::app("CM");
  const CompilerDriver driver(app_options(spec), &test_registry());
  const CompilationPtr comp = driver.run(spec.source, Stage::Layout);
  ASSERT_TRUE(comp->ok());
  const BackendArtifact p4_artifact = driver.emit(comp, "p4");
  const BackendArtifact ebpf_artifact = driver.emit(comp, "ebpf");
  ASSERT_TRUE(p4_artifact.ok);
  ASSERT_TRUE(ebpf_artifact.ok);
  ASSERT_NE(p4_artifact.text, ebpf_artifact.text);

  ArtifactCache cache(Stage::Lower, dir);
  cache.store_artifact(spec.source, comp->options(), p4_artifact);
  cache.store_artifact(spec.source, comp->options(), ebpf_artifact);
  EXPECT_EQ(cache.stats().disk_writes, 2u);

  // Two distinct entries on disk, each naming its backend and the compiler
  // version in the key itself.
  std::size_t entries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    ++entries;
    EXPECT_NE(name.find("-v" + std::string(kLucidVersion)), std::string::npos)
        << name;
    EXPECT_TRUE(name.find("-p4-") != std::string::npos ||
                name.find("-ebpf-") != std::string::npos)
        << name;
  }
  EXPECT_EQ(entries, 2u);

  // Each backend loads back exactly its own bytes.
  const auto p4_loaded = cache.load_artifact(spec.source, comp->options(),
                                             "p4");
  const auto ebpf_loaded = cache.load_artifact(spec.source, comp->options(),
                                               "ebpf");
  ASSERT_TRUE(p4_loaded.has_value());
  ASSERT_TRUE(ebpf_loaded.has_value());
  EXPECT_EQ(p4_loaded->text, p4_artifact.text);
  EXPECT_EQ(ebpf_loaded->text, ebpf_artifact.text);
  EXPECT_EQ(p4_loaded->backend, "p4");
  EXPECT_EQ(ebpf_loaded->backend, "ebpf");
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// SweepEngine
// ---------------------------------------------------------------------------

SweepOptions four_variant_sweep(const std::string& program_name) {
  SweepOptions opts;
  opts.variants = *parse_sweep_grid("stages=4,8,12,16");
  opts.program_name = program_name;
  opts.workers = 4;
  return opts;
}

TEST(SweepEngine, FourVariantsShareOneFrontEndRun) {
  const apps::AppSpec& spec = apps::app("SFW");
  const SweepEngine engine(&test_registry());
  const SweepReport report =
      engine.run(spec.source, four_variant_sweep(spec.key));

  ASSERT_EQ(report.variants.size(), 4u);
  EXPECT_TRUE(report.ok) << report.str();
  // The acceptance criterion: stage records prove a single front-end run.
  EXPECT_EQ(report.frontend_runs, 1);
  for (const SweepVariantReport& vr : report.variants) {
    SCOPED_TRACE(vr.variant.label);
    EXPECT_TRUE(vr.ok);
    for (const StageRecord& rec : vr.records) {
      if (rec.stage == Stage::Parse || rec.stage == Stage::Sema ||
          rec.stage == Stage::Lower) {
        EXPECT_TRUE(rec.shared) << stage_name(rec.stage);
      }
      if (rec.stage == Stage::Layout) {
        EXPECT_FALSE(rec.shared);
        EXPECT_TRUE(rec.ok);
        // Phase B ran here, but Phase A came from the shared front end.
        EXPECT_TRUE(rec.analysis_shared);
      }
    }
    ASSERT_EQ(vr.emissions.size(), 3u);  // p4 + ebpf + interp
    for (const SweepEmission& e : vr.emissions) {
      EXPECT_TRUE(e.ok) << e.backend;
      EXPECT_FALSE(e.text.empty());
    }
  }
  // The report renders without falling over.
  const std::string table = report.str();
  EXPECT_NE(table.find("stages=4"), std::string::npos);
  EXPECT_NE(table.find("front end: 1 run"), std::string::npos);
}

TEST(SweepEngine, ParallelSweepMatchesSerialColdCompiles) {
  const apps::AppSpec& spec = apps::app("DNS");
  const SweepEngine engine(&test_registry());
  const SweepOptions opts = four_variant_sweep(spec.key);
  const SweepReport report = engine.run(spec.source, opts);
  ASSERT_TRUE(report.ok) << report.str();

  for (std::size_t i = 0; i < opts.variants.size(); ++i) {
    SCOPED_TRACE(opts.variants[i].label);
    DriverOptions dopts;
    dopts.model = opts.variants[i].model;
    dopts.program_name = spec.key;
    const CompilerDriver driver(dopts, &test_registry());
    const CompilationPtr cold = driver.run(spec.source, Stage::Layout);
    ASSERT_TRUE(cold->ok());
    EXPECT_EQ(report.variants[i].stats.optimized_stages,
              cold->layout_stats().optimized_stages);
    for (const SweepEmission& e : report.variants[i].emissions) {
      const BackendArtifact cold_artifact = driver.emit(cold, e.backend);
      ASSERT_TRUE(cold_artifact.ok);
      EXPECT_EQ(e.text, cold_artifact.text) << e.backend;
      EXPECT_EQ(e.metrics, cold_artifact.metrics) << e.backend;
    }
  }
}

TEST(SweepEngine, FrontEndFailureShortCircuits) {
  const SweepEngine engine(&test_registry());
  const SweepReport report =
      engine.run("event e();\nhandle e() { y = 1; }\n",
                 four_variant_sweep("bad"));
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(report.variants.empty());
  EXPECT_FALSE(report.frontend_diagnostics.empty());
  EXPECT_NE(report.str().find("front-end diagnostics"), std::string::npos);
}

TEST(SweepEngine, WarmCacheNeedsZeroFrontEndRuns) {
  const apps::AppSpec& spec = apps::app("RR");
  ArtifactCache cache;
  SweepOptions opts = four_variant_sweep(spec.key);
  opts.cache = &cache;
  const SweepEngine engine(&test_registry());

  const SweepReport first = engine.run(spec.source, opts);
  ASSERT_TRUE(first.ok) << first.str();
  EXPECT_EQ(first.frontend_runs, 1);

  const SweepReport second = engine.run(spec.source, opts);
  ASSERT_TRUE(second.ok) << second.str();
  // The front end came out of the cache: zero Parse executions this sweep.
  EXPECT_EQ(second.frontend_runs, 0);
  for (std::size_t i = 0; i < first.variants.size(); ++i) {
    for (std::size_t b = 0; b < first.variants[i].emissions.size(); ++b) {
      EXPECT_EQ(first.variants[i].emissions[b].text,
                second.variants[i].emissions[b].text);
    }
  }
}

TEST(SweepEngine, SemaDeepCacheStillReachesLayout) {
  // A cache that only keeps Sema-deep artifacts hands the engine a
  // compilation that stops there; the engine must finish Lower itself.
  const apps::AppSpec& spec = apps::app("SRO");
  ArtifactCache cache(Stage::Sema);
  SweepOptions opts = four_variant_sweep(spec.key);
  opts.cache = &cache;
  const SweepEngine engine(&test_registry());
  const SweepReport first = engine.run(spec.source, opts);
  EXPECT_TRUE(first.ok) << first.str();
  const SweepReport second = engine.run(spec.source, opts);
  EXPECT_TRUE(second.ok) << second.str();
  EXPECT_EQ(second.frontend_runs, 0);
}

TEST(SweepEngine, DiskCacheServesRepeatSweeps) {
  const std::string dir =
      ::testing::TempDir() + "/lucid-sweep-cache-" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  std::filesystem::remove_all(dir);
  const apps::AppSpec& spec = apps::app("NAT");
  const SweepEngine engine(&test_registry());

  SweepOptions opts = four_variant_sweep(spec.key);
  ArtifactCache cold_cache(Stage::Lower, dir);
  opts.cache = &cold_cache;
  const SweepReport first = engine.run(spec.source, opts);
  ASSERT_TRUE(first.ok) << first.str();
  for (const auto& vr : first.variants) {
    for (const auto& e : vr.emissions) EXPECT_FALSE(e.from_cache);
  }

  // A brand-new cache object (fresh process, same directory): emissions come
  // off disk and are byte-identical.
  ArtifactCache warm_cache(Stage::Lower, dir);
  opts.cache = &warm_cache;
  const SweepReport second = engine.run(spec.source, opts);
  ASSERT_TRUE(second.ok) << second.str();
  for (std::size_t i = 0; i < first.variants.size(); ++i) {
    for (std::size_t b = 0; b < first.variants[i].emissions.size(); ++b) {
      EXPECT_TRUE(second.variants[i].emissions[b].from_cache);
      EXPECT_EQ(first.variants[i].emissions[b].text,
                second.variants[i].emissions[b].text);
    }
  }
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Concurrency stress (the debug-tsan target)
// ---------------------------------------------------------------------------

TEST(SweepConcurrency, WidePipelineSweepUnderManyWorkers) {
  // 16 variants x 3 backends across every worker the machine has; run over
  // two different apps back to back to shake out cross-sweep state. TSan
  // (preset debug-tsan) verifies the clones really share nothing mutable.
  const auto grid = parse_sweep_grid("stages=4,8,12,16;salus=2,4;tables=4,8");
  ASSERT_TRUE(grid.has_value());
  ASSERT_EQ(grid->size(), 16u);
  const SweepEngine engine(&test_registry());
  for (const char* key : {"SFW", "CM"}) {
    SCOPED_TRACE(key);
    const apps::AppSpec& spec = apps::app(key);
    SweepOptions opts;
    opts.variants = *grid;
    opts.program_name = spec.key;
    opts.workers = 0;  // hardware concurrency
    const SweepReport report = engine.run(spec.source, opts);
    EXPECT_EQ(report.frontend_runs, 1);
    ASSERT_EQ(report.variants.size(), 16u);
    for (const auto& vr : report.variants) {
      EXPECT_TRUE(vr.ok) << vr.variant.label << "\n" << report.str();
    }
  }
}

TEST(SweepConcurrency, SharedAnalysisLayoutMatchesColdUnderManyWorkers) {
  // The shared Phase A path under maximum contention (TSan runs this via the
  // concurrency label): 16 variants lay out concurrently off one front end,
  // racing the analysis call_once, and every result must match a serial cold
  // compile byte-for-byte while sharing one analysis by address.
  const auto grid = parse_sweep_grid("stages=4,8,12,16;salus=2,4;tables=4,8");
  ASSERT_TRUE(grid.has_value());
  const apps::AppSpec& spec = apps::app("DNS");
  const CompilerDriver driver(app_options(spec), &test_registry());
  const CompilationPtr base = driver.run(spec.source, Stage::Lower);
  ASSERT_TRUE(base->ok()) << base->diags().render();

  std::vector<std::string> shared_strs(grid->size());
  std::vector<const void*> analysis_addrs(grid->size());
  parallel_for(grid->size(), 0, [&](std::size_t i) {
    DriverOptions vopts = app_options(spec);
    vopts.model = (*grid)[i].model;
    const CompilationPtr clone = base->clone_from_stage(Stage::Lower, vopts);
    const CompilerDriver vdriver(vopts, &test_registry());
    if (!vdriver.run_until(clone, Stage::Layout)) return;
    shared_strs[i] = clone->pipeline().str();
    analysis_addrs[i] = &clone->layout_analysis();
  });

  for (std::size_t i = 0; i < grid->size(); ++i) {
    SCOPED_TRACE((*grid)[i].label);
    DriverOptions copts = app_options(spec);
    copts.model = (*grid)[i].model;
    const CompilationPtr cold =
        CompilerDriver(copts, &test_registry()).run(spec.source);
    ASSERT_TRUE(cold->ok());
    EXPECT_EQ(shared_strs[i], cold->pipeline().str());
    EXPECT_EQ(analysis_addrs[i], &base->layout_analysis());
  }
}

TEST(SweepConcurrency, RecompilesRaceSweepsOverOneSharedPrev) {
  // The incremental edit pipeline's concurrency contract: recompile() only
  // *reads* prev, so any number of recompiles (formatting hits cloning prev,
  // one-decl edits splicing its IR) may race full sweeps over the same
  // source — and the donor's lazily computed layout analysis — with every
  // result byte-identical to its serial counterpart. TSan (preset
  // debug-tsan) runs this via the concurrency label.
  const apps::AppSpec& spec = apps::app("CM");
  const CompilerDriver driver(app_options(spec), &test_registry());
  const CompilationPtr prev = driver.run(spec.source, Stage::Layout);
  ASSERT_TRUE(prev->ok()) << prev->diags().render();

  const std::string ws = "// reformatted\n" + spec.source + "\n// tail\n";
  std::string edited = spec.source;
  const std::size_t brace = edited.find('{', edited.find("handle "));
  ASSERT_NE(brace, std::string::npos);
  edited.insert(brace + 1, " int __zz_race = 1 + 2; ");

  DriverOptions tight = app_options(spec);
  tight.model.salus_per_stage = 2;

  // Serial ground truths.
  const CompilerDriver tight_driver(tight, &test_registry());
  const CompilationPtr cold_ws = tight_driver.run(ws, Stage::Layout);
  ASSERT_TRUE(cold_ws->ok());
  const std::string want_ws = tight_driver.emit(cold_ws, "p4").text;
  const CompilationPtr cold_edit = driver.run(edited, Stage::Layout);
  ASSERT_TRUE(cold_edit->ok());
  const std::string want_edit = driver.emit(cold_edit, "p4").text;

  const auto grid = parse_sweep_grid("stages=4,8,12,16");
  ASSERT_TRUE(grid.has_value());
  const SweepEngine engine(&test_registry());

  constexpr std::size_t kTasks = 12;
  std::vector<std::string> got(kTasks);
  std::vector<bool> ok(kTasks, false);
  parallel_for(kTasks, 0, [&](std::size_t i) {
    switch (i % 3) {
      case 0: {  // a full sweep of the same program
        SweepOptions opts;
        opts.variants = *grid;
        opts.program_name = spec.key;
        opts.workers = 1;
        opts.backends = {"p4"};
        const SweepReport report = engine.run(spec.source, opts);
        ok[i] = report.ok;
        got[i] = report.ok ? "sweep-ok" : "sweep-failed";
        break;
      }
      case 1: {  // formatting hit under a *different* model: clones prev at
                 // Lower and races the donor's analysis call_once
        const CompilerDriver d(tight, &test_registry());
        const CompilationPtr c = d.recompile(prev, ws);
        ok[i] = d.run_until(c, Stage::Layout);
        got[i] = d.emit(c, "p4").text;
        break;
      }
      case 2: {  // one-decl edit splicing prev's IR
        const CompilerDriver d(app_options(spec), &test_registry());
        const CompilationPtr c = d.recompile(prev, edited);
        ok[i] = d.run_until(c, Stage::Layout);
        got[i] = d.emit(c, "p4").text;
        break;
      }
    }
  });
  for (std::size_t i = 0; i < kTasks; ++i) {
    SCOPED_TRACE(i);
    EXPECT_TRUE(ok[i]);
    if (i % 3 == 0) {
      EXPECT_EQ(got[i], "sweep-ok");
    } else {
      EXPECT_EQ(got[i], i % 3 == 1 ? want_ws : want_edit);
    }
  }
}

TEST(SweepConcurrency, ParallelForCoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> counts(1000);
  for (auto& c : counts) c = 0;
  parallel_for(counts.size(), 8,
               [&](std::size_t i) { counts[i].fetch_add(1); });
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i].load(), 1) << i;
  }
}

}  // namespace
}  // namespace lucid
