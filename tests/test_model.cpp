// Analytic model tests against the exact numbers the paper reports in
// Figure 16 and section 2.5.
#include <gtest/gtest.h>

#include "model/recirc_model.hpp"

namespace lucid::model {
namespace {

TEST(SfwModel, Figure16Row10kFlows) {
  SfwModelParams p;
  p.flow_rate = 10'000;
  const auto r = sfw_recirc_model(p);
  // Paper: 815K pkts/s, 0.08% utilization, min packet ~125B.
  EXPECT_NEAR(r.recirc_pps, 815'360, 1'000);
  EXPECT_NEAR(r.pipeline_utilization * 100, 0.08, 0.01);
  EXPECT_NEAR(r.min_pkt_bytes, 125.1, 0.3);
}

TEST(SfwModel, Figure16Row100kFlows) {
  SfwModelParams p;
  p.flow_rate = 100'000;
  const auto r = sfw_recirc_model(p);
  // Paper: 2M pkts/s (rounded), 0.22%, 125.55B.
  EXPECT_NEAR(r.recirc_pps, 2'255'360, 10'000);
  EXPECT_NEAR(r.pipeline_utilization * 100, 0.22, 0.02);
  EXPECT_NEAR(r.min_pkt_bytes, 125.55, 0.4);
}

TEST(SfwModel, Figure16Row1MFlows) {
  SfwModelParams p;
  p.flow_rate = 1'000'000;
  const auto r = sfw_recirc_model(p);
  // Paper: 16M pkts/s, 1.66%, 127.67B.
  EXPECT_NEAR(r.recirc_pps, 16'655'360, 100'000);
  EXPECT_NEAR(r.pipeline_utilization * 100, 1.66, 0.1);
  EXPECT_NEAR(r.min_pkt_bytes, 127.4, 0.8);
}

TEST(SfwModel, ScanTermDominatesAtLowFlowRates) {
  SfwModelParams p;
  p.flow_rate = 0;
  const auto r = sfw_recirc_model(p);
  EXPECT_NEAR(r.recirc_pps, 65536.0 / 0.1, 1.0);
}

TEST(SfwModel, UtilizationGrowsMonotonically) {
  double last = 0;
  for (double f : {1e3, 1e4, 1e5, 1e6, 1e7}) {
    SfwModelParams p;
    p.flow_rate = f;
    const auto r = sfw_recirc_model(p);
    EXPECT_GT(r.pipeline_utilization, last);
    last = r.pipeline_utilization;
  }
}

TEST(LinkScan, Section25Numbers) {
  // 128 ports, one scan step per microsecond: 1M pkts/s, 0.1% of a 1 GHz
  // pipeline, each port checked once per 128 us.
  const auto r = link_scan_overhead(128, 1.0);
  EXPECT_NEAR(r.recirc_pps, 1e6, 1.0);
  EXPECT_NEAR(r.pipeline_fraction * 100, 0.1, 0.001);
  EXPECT_NEAR(r.per_port_scan_interval_us, 128.0, 0.1);
}

}  // namespace
}  // namespace lucid::model
