// Memop validator tests, directly mirroring section 4.2 and Appendix C:
// the valid forms, and each of the paper's invalid examples with its
// specific diagnostic.
#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "sema/memop_check.hpp"

namespace lucid::sema {
namespace {

using frontend::MemopDecl;
using frontend::Parser;
using frontend::Program;

// Parses a program whose first declaration is the memop under test and runs
// the checker. `consts` lists identifiers to treat as compile-time constants.
bool check(std::string_view src, DiagnosticEngine& diags,
           std::initializer_list<std::string_view> consts = {}) {
  Program p = Parser::parse(src, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  const MemopDecl* m = nullptr;
  for (const auto& d : p.decls) {
    if (d->kind == frontend::DeclKind::Memop) {
      m = d->as<MemopDecl>();
      break;
    }
  }
  EXPECT_NE(m, nullptr);
  auto is_const = [&](std::string_view name) {
    for (const auto c : consts) {
      if (c == name) return true;
    }
    return false;
  };
  return check_memop(*m, is_const, diags);
}

TEST(Memop, PlainReturnOfParameterIsValid) {
  DiagnosticEngine diags;
  EXPECT_TRUE(check("memop m(int cur, int x) { return cur; }", diags))
      << diags.render();
}

TEST(Memop, SingleAluOpIsValid) {
  DiagnosticEngine diags;
  EXPECT_TRUE(
      check("memop incr(int stored, int added) { return stored + added; }",
            diags))
      << diags.render();
}

TEST(Memop, IfElseWithOneReturnPerBranchIsValid) {
  // The paper's route-freshness idiom.
  DiagnosticEngine diags;
  EXPECT_TRUE(check(
      "memop newer(int stored, int t) {\n"
      "  if (stored < t) { return t; } else { return stored; }\n"
      "}",
      diags))
      << diags.render();
}

TEST(Memop, ConstOperandsAreValid) {
  DiagnosticEngine diags;
  EXPECT_TRUE(check("memop m(int cur, int x) { return cur + N; }", diags,
                    {"N"}))
      << diags.render();
}

TEST(Memop, BitwiseOperatorsAreValid) {
  for (const char* op : {"&", "|", "^", "-"}) {
    DiagnosticEngine diags;
    const std::string src = std::string("memop m(int cur, int x) { return "
                                        "cur ") +
                            op + " x; }";
    EXPECT_TRUE(check(src, diags)) << op << "\n" << diags.render();
  }
}

// --- Appendix C example 1: compound conditional expressions ---------------
TEST(Memop, CompoundConditionIsRejected) {
  DiagnosticEngine diags;
  EXPECT_FALSE(check(
      "memop compoundCondition(int memval, int y) {\n"
      "  if (memval == 1 || memval == 2) { return memval; }\n"
      "  else { return y; }\n"
      "}",
      diags));
  EXPECT_TRUE(diags.has_code("memop-compound-condition")) << diags.render();
}

// --- Appendix C example 2: too much local state ----------------------------
TEST(Memop, ThreeParametersAreRejected) {
  DiagnosticEngine diags;
  EXPECT_FALSE(check(
      "memop twoLocalArgs(int memval, int y, int z) {\n"
      "  if (memval == 1) { return y; } else { return z; }\n"
      "}",
      diags));
  EXPECT_TRUE(diags.has_code("memop-param-count")) << diags.render();
}

// --- Appendix C example 3: arithmetic too complex --------------------------
TEST(Memop, NestedArithmeticIsRejected) {
  DiagnosticEngine diags;
  EXPECT_FALSE(check(
      "memop multiply(int memval, int x) {\n"
      "  return (N * memval) + x;\n"
      "}",
      diags, {"N"}));
  // Rejected for nesting and/or the unsupported operator.
  EXPECT_TRUE(diags.has_code("memop-too-complex") ||
              diags.has_code("memop-bad-operator"))
      << diags.render();
}

TEST(Memop, MultiplyOperatorIsRejected) {
  DiagnosticEngine diags;
  EXPECT_FALSE(check("memop m(int cur, int x) { return cur * x; }", diags));
  EXPECT_TRUE(diags.has_code("memop-bad-operator")) << diags.render();
}

TEST(Memop, ShiftOperatorIsRejected) {
  DiagnosticEngine diags;
  EXPECT_FALSE(check("memop m(int cur, int x) { return cur << x; }", diags));
  EXPECT_TRUE(diags.has_code("memop-bad-operator")) << diags.render();
}

TEST(Memop, VariableReusedInExpressionIsRejected) {
  DiagnosticEngine diags;
  EXPECT_FALSE(check("memop m(int cur, int x) { return cur + cur; }", diags));
  EXPECT_TRUE(diags.has_code("memop-var-reuse")) << diags.render();
}

TEST(Memop, VariableMayAppearInConditionAndBothBranches) {
  // "At most once per expression" is per-expression, not per-memop.
  DiagnosticEngine diags;
  EXPECT_TRUE(check(
      "memop m(int cur, int x) {\n"
      "  if (cur > x) { return cur; } else { return x; }\n"
      "}",
      diags))
      << diags.render();
}

TEST(Memop, MultipleStatementsAreRejected) {
  DiagnosticEngine diags;
  EXPECT_FALSE(check(
      "memop m(int cur, int x) {\n"
      "  int y = cur + x;\n"
      "  return y;\n"
      "}",
      diags));
  EXPECT_TRUE(diags.has_code("memop-body-shape")) << diags.render();
}

TEST(Memop, MissingElseBranchIsRejected) {
  DiagnosticEngine diags;
  EXPECT_FALSE(check(
      "memop m(int cur, int x) {\n"
      "  if (cur > x) { return cur; }\n"
      "}",
      diags));
  EXPECT_TRUE(diags.has_code("memop-body-shape")) << diags.render();
}

TEST(Memop, UnknownOperandIsRejected) {
  DiagnosticEngine diags;
  EXPECT_FALSE(check("memop m(int cur, int x) { return cur + stray; }",
                     diags));
  EXPECT_TRUE(diags.has_code("memop-bad-operand")) << diags.render();
}

TEST(Memop, CallInBodyIsRejected) {
  DiagnosticEngine diags;
  EXPECT_FALSE(check("memop m(int cur, int x) { return hash(1, cur); }",
                     diags));
  EXPECT_TRUE(diags.has_code("memop-bad-operand")) << diags.render();
}

TEST(Memop, NonIntParameterIsRejected) {
  DiagnosticEngine diags;
  EXPECT_FALSE(check("memop m(bool cur, int x) { return x; }", diags));
  EXPECT_TRUE(diags.has_code("memop-param-type")) << diags.render();
}

// Parameterized sweep: all comparison operators are accepted in conditions.
class MemopComparisons : public ::testing::TestWithParam<const char*> {};

TEST_P(MemopComparisons, ComparisonOperatorsValidInCondition) {
  DiagnosticEngine diags;
  const std::string src = std::string(
                              "memop m(int cur, int x) {\n"
                              "  if (cur ") +
                          GetParam() +
                          " x) { return cur; } else { return x; }\n"
                          "}";
  EXPECT_TRUE(check(src, diags)) << GetParam() << "\n" << diags.render();
}

INSTANTIATE_TEST_SUITE_P(AllComparisons, MemopComparisons,
                         ::testing::Values("==", "!=", "<", ">", "<=", ">="));

// Parameterized sweep: value operators rejected in conditions.
class MemopBadConditionOps : public ::testing::TestWithParam<const char*> {};

TEST_P(MemopBadConditionOps, ValueOperatorsRejectedInCondition) {
  DiagnosticEngine diags;
  const std::string src = std::string(
                              "memop m(int cur, int x) {\n"
                              "  if (cur ") +
                          GetParam() +
                          " x) { return cur; } else { return x; }\n"
                          "}";
  EXPECT_FALSE(check(src, diags)) << GetParam();
  EXPECT_TRUE(diags.has_code("memop-bad-operator")) << diags.render();
}

INSTANTIATE_TEST_SUITE_P(ValueOps, MemopBadConditionOps,
                         ::testing::Values("+", "-", "&", "|", "^"));

}  // namespace
}  // namespace lucid::sema
