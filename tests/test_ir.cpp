// Lowering tests: atomic table graphs (section 6.1), function inlining,
// event-value snapshots, and the Figure 6 example program.
#include <gtest/gtest.h>

#include "core/driver.hpp"

namespace lucid::ir {
namespace {

// The paper's Figure 6 handler, verbatim modulo dialect constants.
constexpr const char* kFigure6 = R"(
const int NUM_HOSTS = 64;
const int NUM_PORTS = 32;
const int NUM_PORTS_X2 = 64;
const int NUM_PORTS_X3 = 96;
const int TCP = 6;
const int UDP = 17;
global nexthops = new Array<<32>>(NUM_HOSTS);
global pcts = new Array<<32>>(NUM_PORTS_X3);
global hcts = new Array<<32>>(NUM_HOSTS);
memop plus(int cur, int x) { return cur + x; }
event count_pkt(int dst, int proto);
handle count_pkt(int dst, int proto) {
  int idx = Array.get(nexthops, dst);
  if (proto != TCP) {
    if (proto == UDP) {
      idx = idx + NUM_PORTS;
    } else {
      idx = idx + NUM_PORTS_X2;
    }
  }
  Array.set(pcts, idx, plus, 1);
  if (proto == TCP) {
    Array.set(hcts, dst, plus, 1);
  }
}
)";

CompilationPtr compile_ok(std::string_view src) {
  const CompilerDriver driver;
  CompilationPtr r = driver.run(src);
  EXPECT_TRUE(r->ok()) << r->diags().render();
  return r;
}

const HandlerGraph& only_handler(const Compilation& r) {
  EXPECT_EQ(r.ir().handlers.size(), 1u);
  return r.ir().handlers.front();
}

int count_kind(const HandlerGraph& g, TableKind k) {
  int n = 0;
  for (const auto& t : g.tables) {
    if (t.kind == k) ++n;
  }
  return n;
}

TEST(Lowering, Figure6ProducesExpectedTables) {
  const auto r = compile_ok(kFigure6);
  const auto& g = only_handler(*r);
  // Three stateful accesses, three branch tables, two idx adjustments.
  EXPECT_EQ(count_kind(g, TableKind::Mem), 3);
  EXPECT_EQ(count_kind(g, TableKind::Branch), 3);
  EXPECT_EQ(count_kind(g, TableKind::Op), 2);
}

TEST(Lowering, Figure6LongestPathMatchesAtomicChain) {
  // Longest path: nexthops_get -> if0 -> if1 -> idx_eq -> pcts_fset -> if2 ->
  // hcts_fset == 7 tables (the unoptimized stage count of Fig 6(1)).
  const auto r = compile_ok(kFigure6);
  EXPECT_EQ(only_handler(*r).longest_path(), 7);
}

TEST(Lowering, ArrayMetadataCollected) {
  const auto r = compile_ok(kFigure6);
  ASSERT_EQ(r->ir().arrays.size(), 3u);
  EXPECT_EQ(r->ir().arrays[0].name, "nexthops");
  EXPECT_EQ(r->ir().arrays[0].decl_index, 0);
  EXPECT_EQ(r->ir().arrays[1].name, "pcts");
  EXPECT_EQ(r->ir().arrays[1].size, 96);
  EXPECT_EQ(r->ir().arrays[2].decl_index, 2);
}

TEST(Lowering, MemopCanonicalized) {
  const auto r = compile_ok(kFigure6);
  const MemopInfo* m = r->ir().find_memop("plus");
  ASSERT_NE(m, nullptr);
  EXPECT_FALSE(m->has_condition);
  EXPECT_EQ(m->then_lhs.var, "cell");
  ASSERT_TRUE(m->then_op.has_value());
  EXPECT_EQ(*m->then_op, frontend::BinOp::Add);
  EXPECT_EQ(m->then_rhs.var, "arg");
}

TEST(Lowering, ConditionalMemopCanonicalized) {
  const auto r = compile_ok(
      "global a = new Array<<32>>(4);\n"
      "memop newer(int cur, int t) {\n"
      "  if (cur < t) { return t; } else { return cur; }\n"
      "}\n"
      "event e(int t);\n"
      "handle e(int t) { Array.set(a, 0, newer, t); }\n");
  const MemopInfo* m = r->ir().find_memop("newer");
  ASSERT_NE(m, nullptr);
  EXPECT_TRUE(m->has_condition);
  EXPECT_EQ(m->cond_lhs.var, "cell");
  EXPECT_EQ(m->cond_op, CmpOp::Lt);
  EXPECT_EQ(m->cond_rhs.var, "arg");
  EXPECT_EQ(m->then_lhs.var, "arg");
  EXPECT_EQ(m->else_lhs.var, "cell");
}

TEST(Lowering, FunctionInliningProducesMemTable) {
  const auto r = compile_ok(
      "global pathlens = new Array<<32>>(64);\n"
      "fun int get_pathlen(int dst) { return Array.get(pathlens, dst); }\n"
      "event q(int dst);\n"
      "handle q(int dst) { int p = get_pathlen(dst); }\n");
  const auto& g = only_handler(*r);
  EXPECT_EQ(count_kind(g, TableKind::Mem), 1);
  // The inlined body references the real global.
  for (const auto& t : g.tables) {
    if (t.kind == TableKind::Mem) {
      EXPECT_EQ(t.mem.array, "pathlens");
    }
  }
}

TEST(Lowering, ArrayParameterResolvedThroughInlining) {
  const auto r = compile_ok(
      "global arr1 = new Array<<32>>(4);\n"
      "global arr2 = new Array<<32>>(4);\n"
      "memop plus(int cur, int x) { return cur + x; }\n"
      "fun void bump(Array<<32>> a, int i) { Array.set(a, i, plus, 1); }\n"
      "event e(int i);\n"
      "handle e(int i) { bump(arr1, i); bump(arr2, i); }\n");
  const auto& g = only_handler(*r);
  std::vector<std::string> arrays;
  for (const auto& t : g.tables) {
    if (t.kind == TableKind::Mem) arrays.push_back(t.mem.array);
  }
  EXPECT_EQ(arrays, (std::vector<std::string>{"arr1", "arr2"}));
}

TEST(Lowering, GenerateCarriesCombinatorMetadata) {
  const auto r = compile_ok(
      "const group GRP = {2, 3};\n"
      "event c(int x);\n"
      "event a(int x);\n"
      "handle a(int x) {\n"
      "  mgenerate Event.delay(Event.locate(c(x), GRP), 10ms);\n"
      "}\n");
  const auto& g = only_handler(*r);
  const AtomicTable* gen = nullptr;
  for (const auto& t : g.tables) {
    if (t.kind == TableKind::Generate) gen = &t;
  }
  ASSERT_NE(gen, nullptr);
  EXPECT_EQ(gen->gen.event, "c");
  EXPECT_TRUE(gen->gen.multicast);
  EXPECT_EQ(gen->gen.group, "GRP");
  ASSERT_TRUE(gen->gen.delay.is_const());
  EXPECT_EQ(gen->gen.delay.value, 10'000'000);
}

TEST(Lowering, EventLocalSnapshotsArguments) {
  // Mutating x after binding the event must not change the generated value:
  // the lowering snapshots operands at the binding point.
  const auto r = compile_ok(
      "event out(int v);\n"
      "event in(int x);\n"
      "handle in(int x) {\n"
      "  event pending = out(x);\n"
      "  x = x + 1;\n"
      "  generate pending;\n"
      "}\n");
  const auto& g = only_handler(*r);
  const AtomicTable* gen = nullptr;
  for (const auto& t : g.tables) {
    if (t.kind == TableKind::Generate) gen = &t;
  }
  ASSERT_NE(gen, nullptr);
  ASSERT_EQ(gen->gen.args.size(), 1u);
  ASSERT_TRUE(gen->gen.args[0].is_var());
  // Bound to a snapshot temp, not to x.
  EXPECT_NE(gen->gen.args[0].var, "x");
}

TEST(Lowering, HashBecomesHashTable) {
  const auto r = compile_ok(
      "global t = new Array<<32>>(256);\n"
      "event e(int a, int b);\n"
      "handle e(int a, int b) {\n"
      "  int h = hash(7, a, b);\n"
      "  int v = Array.get(t, h);\n"
      "}\n");
  const auto& g = only_handler(*r);
  const AtomicTable* ht = nullptr;
  for (const auto& t : g.tables) {
    if (t.kind == TableKind::Hash) ht = &t;
  }
  ASSERT_NE(ht, nullptr);
  EXPECT_EQ(ht->hash.seed, 7);
  EXPECT_EQ(ht->hash.args.size(), 2u);
}

TEST(Lowering, SelfAndTimeAreMetadata) {
  const auto r = compile_ok(
      "event e(int peer);\n"
      "handle e(int peer) {\n"
      "  int me = SELF;\n"
      "  int now = Sys.time();\n"
      "  generate Event.locate(e(me + now), peer);\n"
      "}\n");
  (void)only_handler(*r);
}

TEST(Lowering, CompoundConditionsShortCircuitIntoBranches) {
  // `a == 1 && b == 2` lowers to two chained branch tables (which branch
  // inlining later dissolves into match rules) — no ALU predicate ops are
  // spent on constant comparisons.
  const auto r = compile_ok(
      "event e(int a, int b);\n"
      "handle e(int a, int b) {\n"
      "  int y = 0;\n"
      "  if (a == 1 && b == 2) { y = 1; }\n"
      "}\n");
  const auto& g = only_handler(*r);
  EXPECT_EQ(count_kind(g, TableKind::Branch), 2);
  // Only the y assignment(s) need ALU ops.
  EXPECT_LE(count_kind(g, TableKind::Op), 2);
}

TEST(Lowering, VarVarComparisonStillNeedsPredicateAlu) {
  const auto r = compile_ok(
      "event e(int a, int b);\n"
      "handle e(int a, int b) {\n"
      "  int y = 0;\n"
      "  if (a < b) { y = 1; }\n"
      "}\n");
  const auto& g = only_handler(*r);
  EXPECT_EQ(count_kind(g, TableKind::Branch), 1);
  // The a<b predicate costs one ALU op.
  EXPECT_GE(count_kind(g, TableKind::Op), 2);
}

TEST(Lowering, EmptyHandlerHasNoTables) {
  const auto r = compile_ok("event e();\nhandle e() { return; }\n");
  EXPECT_EQ(only_handler(*r).entry, -1);
  EXPECT_EQ(only_handler(*r).longest_path(), 0);
}

}  // namespace
}  // namespace lucid::ir
