// CompilerDriver API tests: stage-by-stage stop/resume, per-stage
// diagnostics isolation, pass-timing counters, the backend registry, and the
// Compilation ownership model (a Runtime must keep the artifacts alive after
// the driver and testbed are gone).
#include <gtest/gtest.h>

#include <memory>

#include "core/backends.hpp"
#include "core/compiler.hpp"
#include "interp/testbed.hpp"

namespace lucid {
namespace {

constexpr const char* kCounter =
    "global cnt = new Array<<32>>(16);\n"
    "memop plus(int cur, int x) { return cur + x; }\n"
    "event bump(int i);\n"
    "handle bump(int i) { Array.set(cnt, i & 15, plus, 1); }\n";

constexpr const char* kSemaError =
    "event e();\n"
    "handle e() { y = 1; }\n";  // undefined variable: parses, fails sema

constexpr const char* kParseError = "event";  // truncated declaration

// ---------------------------------------------------------------------------
// Stage-by-stage stop and resume
// ---------------------------------------------------------------------------

TEST(Driver, StopAfterEachStageThenResume) {
  const CompilerDriver driver;
  const CompilationPtr comp = driver.start(kCounter);
  EXPECT_FALSE(comp->last_stage().has_value());

  EXPECT_TRUE(driver.run_until(comp, Stage::Parse));
  EXPECT_TRUE(comp->succeeded(Stage::Parse));
  EXPECT_FALSE(comp->ran(Stage::Sema));
  EXPECT_EQ(comp->last_stage(), Stage::Parse);
  EXPECT_FALSE(comp->ast().events().empty());

  EXPECT_TRUE(driver.run_until(comp, Stage::Sema));
  EXPECT_TRUE(comp->succeeded(Stage::Sema));
  EXPECT_FALSE(comp->ran(Stage::Lower));
  EXPECT_EQ(comp->analysis().handler_end_stage.count("bump"), 1u);

  // Resume the rest of the pipeline in one go.
  EXPECT_TRUE(driver.run_until(comp, Stage::Layout));
  EXPECT_TRUE(comp->succeeded(Stage::Lower));
  EXPECT_TRUE(comp->succeeded(Stage::Layout));
  EXPECT_EQ(comp->ir().arrays.size(), 1u);
  EXPECT_GT(comp->layout_stats().optimized_stages, 0);
}

TEST(Driver, RunNextAdvancesOneStageAtATime) {
  const CompilerDriver driver;
  const CompilationPtr comp = driver.start(kCounter);
  const Stage expected[] = {Stage::Parse, Stage::Sema, Stage::Lower,
                           Stage::Layout};
  for (const Stage s : expected) {
    EXPECT_TRUE(driver.run_next(comp));
    EXPECT_EQ(comp->last_stage(), s);
  }
  // The middle end is complete; there is nothing left to step.
  EXPECT_FALSE(driver.run_next(comp));
  EXPECT_TRUE(comp->ok());
}

TEST(Driver, RerunningACompletedStageIsANoOp) {
  const CompilerDriver driver;
  const CompilationPtr comp = driver.run(kCounter, Stage::Layout);
  ASSERT_TRUE(comp->ok());
  const double parse_ms = comp->record(Stage::Parse).wall_ms;
  const std::size_t diag_count = comp->diags().all().size();
  EXPECT_TRUE(driver.run_until(comp, Stage::Layout));
  EXPECT_EQ(comp->record(Stage::Parse).wall_ms, parse_ms);
  EXPECT_EQ(comp->diags().all().size(), diag_count);
}

TEST(Driver, FailedStageBlocksResume) {
  const CompilerDriver driver;
  const CompilationPtr comp = driver.run(kSemaError, Stage::Layout);
  EXPECT_FALSE(comp->ok());
  EXPECT_TRUE(comp->succeeded(Stage::Parse));
  EXPECT_TRUE(comp->ran(Stage::Sema));
  EXPECT_FALSE(comp->succeeded(Stage::Sema));
  EXPECT_FALSE(comp->ran(Stage::Lower));
  // Resume attempts refuse to run past the failure.
  EXPECT_FALSE(driver.run_until(comp, Stage::Layout));
  EXPECT_FALSE(comp->ran(Stage::Lower));
  EXPECT_FALSE(driver.run_next(comp));
}

// ---------------------------------------------------------------------------
// Per-stage diagnostics isolation
// ---------------------------------------------------------------------------

TEST(Driver, SemaDiagnosticsDoNotLeakIntoOtherStages) {
  const CompilerDriver driver;
  const CompilationPtr comp = driver.run(kSemaError, Stage::Layout);
  EXPECT_TRUE(comp->stage_diagnostics(Stage::Parse).empty());
  EXPECT_FALSE(comp->stage_diagnostics(Stage::Sema).empty());
  EXPECT_TRUE(comp->stage_diagnostics(Stage::Lower).empty());
  for (const auto& d : comp->stage_diagnostics(Stage::Sema)) {
    EXPECT_EQ(d.severity, Severity::Error);
  }
}

TEST(Driver, ParseDiagnosticsAttributeToParse) {
  const CompilerDriver driver;
  const CompilationPtr comp = driver.run(kParseError, Stage::Layout);
  EXPECT_FALSE(comp->ok());
  EXPECT_FALSE(comp->stage_diagnostics(Stage::Parse).empty());
  EXPECT_FALSE(comp->ran(Stage::Sema));
  EXPECT_TRUE(comp->stage_diagnostics(Stage::Sema).empty());
}

// ---------------------------------------------------------------------------
// Pass timings
// ---------------------------------------------------------------------------

TEST(Driver, TimingCountersAreMonotone) {
  const CompilerDriver driver;
  const CompilationPtr comp = driver.run(kCounter, Stage::Layout);
  ASSERT_TRUE(comp->ok());
  double sum = 0.0;
  for (const StageRecord& rec : comp->records()) {
    EXPECT_GE(rec.wall_ms, 0.0) << stage_name(rec.stage);
    EXPECT_LE(rec.wall_ms, comp->total_wall_ms()) << stage_name(rec.stage);
    sum += rec.wall_ms;
  }
  EXPECT_DOUBLE_EQ(sum, comp->total_wall_ms());
  // Running more stages never decreases the total.
  const CompilationPtr partial = driver.run(kCounter, Stage::Sema);
  const double after_sema = partial->total_wall_ms();
  driver.run_until(partial, Stage::Layout);
  EXPECT_GE(partial->total_wall_ms(), after_sema);
}

TEST(Driver, TimingReportListsEveryRanStage) {
  const CompilerDriver driver;
  const CompilationPtr comp = driver.run(kCounter, Stage::Layout);
  const std::string report = comp->timing_report();
  for (const char* stage : {"parse", "sema", "lower", "layout", "total"}) {
    EXPECT_NE(report.find(stage), std::string::npos) << report;
  }
}

TEST(Driver, TimingReportJsonIsMachineReadable) {
  // The --time-passes=json payload: one object, every ran stage with its
  // wall clock and sharing flags, and the total. A clone's Layout record
  // must advertise the shared Phase A analysis.
  const CompilerDriver driver;
  const CompilationPtr comp = driver.run(kCounter, Stage::Layout);
  const std::string json = comp->timing_report_json();
  EXPECT_EQ(json.front(), '{');
  for (const char* needle :
       {"\"program\": ", "\"stage\": \"parse\"", "\"stage\": \"sema\"",
        "\"stage\": \"lower\"", "\"stage\": \"layout\"", "\"wall_ms\": ",
        "\"total_wall_ms\": ", "\"analysis_shared\": false"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << json;
  }
  EXPECT_EQ(json.find("\"analysis_shared\": true"), std::string::npos);

  const CompilationPtr clone = comp->clone_from_stage(Stage::Lower);
  ASSERT_NE(clone, nullptr);
  ASSERT_TRUE(driver.run_until(clone, Stage::Layout));
  const std::string clone_json = clone->timing_report_json();
  EXPECT_NE(clone_json.find("\"shared\": true"), std::string::npos)
      << clone_json;
  EXPECT_NE(clone_json.find("\"analysis_shared\": true"), std::string::npos)
      << clone_json;
}

// ---------------------------------------------------------------------------
// Backend registry
// ---------------------------------------------------------------------------

TEST(Driver, DefaultBackendsAreRegistered) {
  BackendRegistry registry;
  register_default_backends(registry);
  ASSERT_NE(registry.find("p4"), nullptr);
  ASSERT_NE(registry.find("interp"), nullptr);
  ASSERT_NE(registry.find("ebpf"), nullptr);
  ASSERT_NE(registry.find("native"), nullptr);
  EXPECT_EQ(registry.names(),
            (std::vector<std::string>{"ebpf", "interp", "native", "p4"}));
  // Idempotent: a second registration does not duplicate.
  register_default_backends(registry);
  EXPECT_EQ(registry.size(), 4u);
}

TEST(Driver, UnknownBackendIsADiagnosticNotACrash) {
  BackendRegistry registry;
  register_default_backends(registry);
  const CompilerDriver driver({}, &registry);
  const CompilationPtr comp = driver.run(kCounter, Stage::Layout);
  ASSERT_TRUE(comp->ok());
  const BackendArtifact artifact = driver.emit(comp, "bmv2");
  EXPECT_FALSE(artifact.ok);
  EXPECT_TRUE(artifact.text.empty());
  EXPECT_TRUE(comp->diags().has_code("driver-unknown-backend"));
  EXPECT_FALSE(comp->ran(Stage::Emit));
}

TEST(Driver, EmitP4ThroughRegistry) {
  BackendRegistry registry;
  register_default_backends(registry);
  const CompilerDriver driver({}, &registry);
  // emit() runs the stages the backend needs on its own.
  const CompilationPtr comp = driver.start(kCounter);
  const BackendArtifact artifact = driver.emit(comp, "p4");
  ASSERT_TRUE(artifact.ok) << comp->diags().render();
  EXPECT_NE(artifact.text.find("Switch(pipe) main;"), std::string::npos);
  EXPECT_GT(artifact.metrics.at("loc_total"), 0);
  EXPECT_TRUE(comp->succeeded(Stage::Layout));
  EXPECT_TRUE(comp->succeeded(Stage::Emit));
}

TEST(Driver, EmitInterpThroughRegistry) {
  BackendRegistry registry;
  register_default_backends(registry);
  const CompilerDriver driver({}, &registry);
  const CompilationPtr comp = driver.start(kCounter);
  const BackendArtifact artifact = driver.emit(comp, "interp");
  ASSERT_TRUE(artifact.ok) << comp->diags().render();
  EXPECT_NE(artifact.text.find("interp binding"), std::string::npos);
  EXPECT_EQ(artifact.metrics.at("events"), 1);
  EXPECT_EQ(artifact.metrics.at("arrays"), 1);
}

TEST(Driver, PreexistingDiagnosticsDoNotFailLaterStages) {
  // A failed emit attempt leaves an error diagnostic on the compilation;
  // stage success is judged on the errors each stage itself adds, so the
  // middle end must still run clean afterwards.
  BackendRegistry registry;
  register_default_backends(registry);
  const CompilerDriver driver({}, &registry);
  const CompilationPtr comp = driver.start(kCounter);
  const BackendArtifact artifact = driver.emit(comp, "no-such-backend");
  EXPECT_FALSE(artifact.ok);
  EXPECT_TRUE(comp->diags().has_errors());
  EXPECT_TRUE(driver.run_until(comp, Stage::Layout));
  for (const Stage s : {Stage::Parse, Stage::Sema, Stage::Lower,
                        Stage::Layout}) {
    EXPECT_TRUE(comp->succeeded(s)) << stage_name(s);
  }
}

namespace {
class AlwaysFailBackend final : public Backend {
 public:
  [[nodiscard]] std::string name() const override { return "failing"; }
  [[nodiscard]] std::string description() const override {
    return "test backend that always fails";
  }
  [[nodiscard]] BackendArtifact emit(Compilation& comp) override {
    comp.diags().error({}, "test-backend-fail", "intentional failure");
    return {};
  }
};
}  // namespace

TEST(Driver, EmitRecordAggregatesAcrossBackends) {
  BackendRegistry registry;
  register_default_backends(registry);
  ASSERT_TRUE(registry.add(std::make_unique<AlwaysFailBackend>()));
  const CompilerDriver driver({}, &registry);
  const CompilationPtr comp = driver.run(kCounter, Stage::Layout);
  ASSERT_TRUE(driver.emit(comp, "p4").ok);
  EXPECT_TRUE(comp->succeeded(Stage::Emit));
  const double after_first = comp->record(Stage::Emit).wall_ms;
  EXPECT_FALSE(driver.emit(comp, "failing").ok);
  // ok holds only if every emission succeeded; timings accumulate.
  EXPECT_FALSE(comp->succeeded(Stage::Emit));
  EXPECT_GE(comp->record(Stage::Emit).wall_ms, after_first);
  // The Emit diagnostics range spans the failing backend's error.
  bool found = false;
  for (const auto& d : comp->stage_diagnostics(Stage::Emit)) {
    if (d.code == "test-backend-fail") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Driver, LazilyRunStagesAreNotAttributedToEmit) {
  BackendRegistry registry;
  register_default_backends(registry);
  const CompilerDriver driver({}, &registry);
  const CompilationPtr comp = driver.start(kCounter);
  // interp only needs Lower; Layout must not run yet.
  ASSERT_TRUE(driver.emit(comp, "interp").ok);
  EXPECT_FALSE(comp->ran(Stage::Layout));
  // p4 pulls in Layout lazily; whatever Layout reports belongs to Layout,
  // not to the Emit record that triggered it.
  ASSERT_TRUE(driver.emit(comp, "p4").ok);
  EXPECT_TRUE(comp->succeeded(Stage::Layout));
  EXPECT_TRUE(comp->stage_diagnostics(Stage::Emit).empty());
}

TEST(Driver, FailedEmitDoesNotPoisonLaterEmits) {
  BackendRegistry registry;
  register_default_backends(registry);
  ASSERT_TRUE(registry.add(std::make_unique<AlwaysFailBackend>()));
  const CompilerDriver driver({}, &registry);
  const CompilationPtr comp = driver.run(kCounter, Stage::Layout);
  ASSERT_TRUE(comp->ok());
  EXPECT_FALSE(driver.emit(comp, "failing").ok);
  // The middle end is untouched; a different backend must still emit, and
  // must not see a spurious "stage failed" diagnostic.
  const BackendArtifact p4 = driver.emit(comp, "p4");
  EXPECT_TRUE(p4.ok) << comp->diags().render();
  EXPECT_FALSE(comp->diags().has_code("driver-stage-failed"));
  EXPECT_TRUE(comp->succeeded(Stage::Layout));
}

TEST(Driver, EmitOnFailedCompilationReportsStageFailure) {
  BackendRegistry registry;
  register_default_backends(registry);
  const CompilerDriver driver({}, &registry);
  const CompilationPtr comp = driver.start(kSemaError);
  const BackendArtifact artifact = driver.emit(comp, "p4");
  EXPECT_FALSE(artifact.ok);
  EXPECT_TRUE(comp->diags().has_code("driver-stage-failed"));
}

// ---------------------------------------------------------------------------
// clone_from_stage: fork a compilation, sharing completed front-end stages
// ---------------------------------------------------------------------------

TEST(Driver, CloneSharesArtifactsByAddress) {
  const CompilerDriver driver;
  const CompilationPtr base = driver.run(kCounter, Stage::Layout);
  ASSERT_TRUE(base->ok());

  const CompilationPtr clone = base->clone_from_stage(Stage::Lower);
  ASSERT_NE(clone, nullptr);
  EXPECT_TRUE(clone->is_clone());
  EXPECT_EQ(clone->donor(), base.get());
  EXPECT_FALSE(base->is_clone());
  // Shared, not copied: the very same objects.
  EXPECT_EQ(&clone->ast(), &base->ast());
  EXPECT_EQ(&clone->analysis(), &base->analysis());
  EXPECT_EQ(&clone->ir(), &base->ir());
  // Stage records carry the provenance.
  for (const Stage s : {Stage::Parse, Stage::Sema, Stage::Lower}) {
    EXPECT_TRUE(clone->succeeded(s)) << stage_name(s);
    EXPECT_TRUE(clone->record(s).shared) << stage_name(s);
    EXPECT_FALSE(base->record(s).shared) << stage_name(s);
  }
  EXPECT_FALSE(clone->ran(Stage::Layout));
}

TEST(Driver, CloneRunsItsOwnLayoutUnderItsOwnModel) {
  const CompilerDriver driver;
  const CompilationPtr base = driver.run(kCounter, Stage::Layout);
  ASSERT_TRUE(base->ok());
  const int base_stages = base->layout_stats().optimized_stages;

  DriverOptions tight;
  tight.model.tables_per_stage = 1;
  tight.model.members_per_table = 1;
  const CompilationPtr clone = base->clone_from_stage(Stage::Lower, tight);
  ASSERT_NE(clone, nullptr);
  EXPECT_EQ(clone->options().model.tables_per_stage, 1);
  ASSERT_TRUE(driver.run_until(clone, Stage::Layout));
  EXPECT_FALSE(clone->record(Stage::Layout).shared);
  // The clone laid out under its own model; the donor is untouched.
  EXPECT_EQ(base->layout_stats().optimized_stages, base_stages);
  EXPECT_GE(clone->layout_stats().optimized_stages, base_stages);
}

TEST(Driver, CloneFromLayoutSharesThePipeline) {
  BackendRegistry registry;
  register_default_backends(registry);
  const CompilerDriver driver({}, &registry);
  const CompilationPtr base = driver.run(kCounter, Stage::Layout);
  ASSERT_TRUE(base->ok());
  const CompilationPtr clone = base->clone_from_stage(Stage::Layout);
  ASSERT_NE(clone, nullptr);
  EXPECT_EQ(&clone->pipeline(), &base->pipeline());
  // Emission runs on the clone without touching the donor's Emit record.
  const BackendArtifact artifact = driver.emit(clone, "p4");
  ASSERT_TRUE(artifact.ok) << clone->diags().render();
  EXPECT_TRUE(clone->succeeded(Stage::Emit));
  EXPECT_FALSE(base->ran(Stage::Emit));
}

TEST(Driver, CloneRefusesInvalidRequests) {
  const CompilerDriver driver;
  const CompilationPtr base = driver.run(kCounter, Stage::Layout);
  ASSERT_TRUE(base->ok());
  // Parse-level clones would share an AST that a later Sema run mutates.
  EXPECT_EQ(base->clone_from_stage(Stage::Parse), nullptr);
  EXPECT_EQ(base->clone_from_stage(Stage::Emit), nullptr);
  // Stages that have not (successfully) run cannot be shared.
  const CompilationPtr partial = driver.run(kCounter, Stage::Sema);
  EXPECT_EQ(partial->clone_from_stage(Stage::Lower), nullptr);
  EXPECT_NE(partial->clone_from_stage(Stage::Sema), nullptr);
  const CompilationPtr failed = driver.run(kSemaError, Stage::Layout);
  EXPECT_EQ(failed->clone_from_stage(Stage::Sema), nullptr);
}

TEST(Driver, CloneKeepsDonorArtifactsAlive) {
  const CompilerDriver driver;
  CompilationPtr base = driver.run(kCounter, Stage::Layout);
  ASSERT_TRUE(base->ok());
  CompilationPtr clone = base->clone_from_stage(Stage::Lower);
  ASSERT_NE(clone, nullptr);
  base.reset();  // the clone co-owns the donor; artifacts must survive
  ASSERT_TRUE(driver.run_until(clone, Stage::Layout));
  EXPECT_EQ(clone->ir().arrays.front().name, "cnt");
  EXPECT_GT(clone->layout_stats().optimized_stages, 0);
}

TEST(Driver, ChainedClonesResolveThroughTheChain) {
  const CompilerDriver driver;
  const CompilationPtr base = driver.run(kCounter, Stage::Layout);
  ASSERT_TRUE(base->ok());
  const CompilationPtr mid = base->clone_from_stage(Stage::Lower);
  ASSERT_NE(mid, nullptr);
  ASSERT_TRUE(driver.run_until(mid, Stage::Layout));
  const CompilationPtr leaf = mid->clone_from_stage(Stage::Layout);
  ASSERT_NE(leaf, nullptr);
  // The front end resolves through mid to base; the layout is mid's own.
  EXPECT_EQ(&leaf->ast(), &base->ast());
  EXPECT_EQ(&leaf->pipeline(), &mid->pipeline());
  EXPECT_NE(&mid->pipeline(), &base->pipeline());
}

// ---------------------------------------------------------------------------
// The deprecated one-shot compile() shim stays faithful to the driver
// ---------------------------------------------------------------------------

TEST(Driver, DeprecatedCompileShimMatchesDriver) {
  DiagnosticEngine diags(kCounter);
  const CompileResult ok = compile(kCounter, diags);
  ASSERT_TRUE(ok.ok) << diags.render();
  EXPECT_FALSE(diags.has_errors());
  EXPECT_EQ(ok.ir.arrays.size(), 1u);
  const CompilerDriver driver;
  const CompilationPtr comp = driver.run(kCounter, Stage::Layout);
  EXPECT_EQ(ok.stats.optimized_stages,
            comp->layout_stats().optimized_stages);
  EXPECT_EQ(ok.pipeline.array_stage, comp->pipeline().array_stage);

  // Failure path: diagnostics replay into the caller's engine.
  DiagnosticEngine bad_diags(kSemaError);
  const CompileResult bad = compile(kSemaError, bad_diags);
  EXPECT_FALSE(bad.ok);
  EXPECT_TRUE(bad_diags.has_errors());
  EXPECT_TRUE(bad_diags.has_code("sema-undefined"));
}

// ---------------------------------------------------------------------------
// Ownership: artifacts outlive the driver (the old dangling-reference hazard)
// ---------------------------------------------------------------------------

TEST(Driver, RuntimeKeepsCompilationAliveAfterDriverDies) {
  sim::Simulator simulator;
  pisa::SwitchConfig sc;
  sc.id = 1;
  pisa::Switch sw(simulator, sc);
  sched::EventScheduler node(sw, {});

  std::unique_ptr<interp::Runtime> runtime;
  {
    // Driver and the local CompilationPtr are destroyed at scope exit; the
    // Runtime must share ownership of the artifacts, not reference them.
    const CompilerDriver driver;
    const CompilationPtr comp = driver.run(kCounter, Stage::Layout);
    ASSERT_TRUE(comp->ok()) << comp->diags().render();
    runtime = std::make_unique<interp::Runtime>(comp, node);
  }

  for (int i = 0; i < 3; ++i) runtime->inject("bump", {7});
  simulator.run_until(10 * sim::kMs);
  EXPECT_EQ(runtime->stats().executions.at("bump"), 3u);
  EXPECT_EQ(runtime->array("cnt")->get(7), 3);
}

TEST(Driver, CompilationSharedAcrossRuntimesOutlivesTestbed) {
  CompilationPtr comp;
  {
    interp::Testbed tb(kCounter);
    ASSERT_TRUE(tb.ok()) << tb.diagnostics();
    comp = tb.compilation_ptr();
    tb.inject_and_run(1, "bump", {3});
    EXPECT_EQ(tb.node(1).array("cnt")->get(3), 1);
  }
  // The testbed (and its runtimes) are gone; the artifacts are still valid.
  EXPECT_TRUE(comp->ok());
  EXPECT_EQ(comp->ir().arrays.front().name, "cnt");
}

}  // namespace
}  // namespace lucid
