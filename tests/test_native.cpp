// Native execution engine (src/native): the differential-state contract.
//
// The contract (documented in tests/README.md): for any event schedule, the
// native engine must leave register state *byte-identical* to the reference
// interpreter — every cell of every array, every per-event execution and
// generate count, every scheduler counter. These tests pin that contract on
// all ten paper applications with randomized traffic, pin run_batch against
// run_one, pin the coupled Runtime inside a real multi-node fabric, and pin
// the control-plane adapter (ctrl::NativeDataPlane) against the interp one.
//
// The sharded fleet extends the contract per shard (see tests/README.md):
// each ReplicaFleet shard must be byte-identical to a single-threaded
// Replica run of that shard's injection subsequence, at every shard count —
// plus bounded-footprint, tie-break-boundary, and live-control-plane
// (TSan-labeled) coverage for the batched event loop.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/apps.hpp"
#include "core/backends.hpp"
#include "ctrl/native_bridge.hpp"
#include "native/differential.hpp"
#include "net/network.hpp"

namespace lucid::native {
namespace {

std::shared_ptr<const Program> build_app(const std::string& key,
                                         CompilationPtr* comp_out = nullptr) {
  interp::TestbedConfig cfg;
  cfg.program_name = key;
  interp::Testbed tb(apps::app(key).source, cfg);
  EXPECT_TRUE(tb.ok()) << tb.diagnostics();
  if (comp_out != nullptr) *comp_out = tb.compilation_ptr();
  std::string err;
  auto prog = Program::build(tb.compilation_ptr(), &err);
  EXPECT_NE(prog, nullptr) << err;
  return prog;
}

// ---------------------------------------------------------------------------
// Differential state pinning: all ten paper apps, randomized traffic
// ---------------------------------------------------------------------------

TEST(NativeDifferential, AllTenAppsByteIdenticalState) {
  std::uint64_t seed = 0xC0FFEE;
  for (const auto& app : apps::all_apps()) {
    const auto out =
        diff::run_differential(app.source, app.key, seed++, 300);
    EXPECT_TRUE(out.ok) << app.key << ": " << out.detail;
    // A run that executed nothing would pass the diff vacuously.
    EXPECT_GT(out.interp.executed, 0u) << app.key;
  }
}

TEST(NativeDifferential, SeedChangesScheduleButNotAgreement) {
  const auto& app = apps::app("SFW");
  const auto a = diff::run_differential(app.source, app.key, 1, 200);
  const auto b = diff::run_differential(app.source, app.key, 2, 200);
  EXPECT_TRUE(a.ok) << a.detail;
  EXPECT_TRUE(b.ok) << b.detail;
  // Different seeds produce genuinely different runs (else the sweep above
  // is ten copies of one data point).
  EXPECT_NE(a.interp.arrays, b.interp.arrays);
}

// ---------------------------------------------------------------------------
// run_batch == run_one
// ---------------------------------------------------------------------------

TEST(NativeBatch, BatchMatchesSequentialRunOne) {
  const auto prog = build_app("SFW");
  ASSERT_NE(prog, nullptr);
  const ir::ProgramIR& ir = prog->ir();

  // Two identical zeroed register files.
  std::vector<std::vector<std::int64_t>> one_cells;
  std::vector<std::vector<std::int64_t>> batch_cells;
  std::vector<std::int64_t*> one_ptrs;
  std::vector<std::int64_t*> batch_ptrs;
  for (const auto& arr : ir.arrays) {
    one_cells.emplace_back(static_cast<std::size_t>(arr.size), 0);
    batch_cells.emplace_back(static_cast<std::size_t>(arr.size), 0);
  }
  for (auto& c : one_cells) one_ptrs.push_back(c.data());
  for (auto& c : batch_cells) batch_ptrs.push_back(c.data());

  // A packet vector spanning every handled event with varied args; batch
  // size 1000 crosses the module's internal chunk boundary (256).
  std::vector<const ir::EventInfo*> handled;
  for (const auto& cand : ir.events) {
    if (cand.has_handler) handled.push_back(&cand);
  }
  ASSERT_FALSE(handled.empty());

  std::vector<PacketIn> packets;
  std::uint64_t rng = 42;
  for (int i = 0; i < 1000; ++i) {
    const ir::EventInfo* ev =
        handled[static_cast<std::size_t>(i) % handled.size()];
    PacketIn in;
    in.event_id = ev->event_id;
    in.nargs = static_cast<std::int32_t>(ev->params.size());
    in.now_ns = 1000 + i;
    in.self_id = 1;
    for (std::int32_t a = 0; a < in.nargs; ++a) {
      in.args[a] =
          static_cast<std::int64_t>(diff::splitmix64(rng) % 100000);
    }
    packets.push_back(in);
  }

  const auto gens = std::max<std::int32_t>(prog->module().max_gens(), 1);
  std::vector<GenOut> one_out(static_cast<std::size_t>(gens));
  std::vector<std::int32_t> one_counts;
  for (const auto& p : packets) {
    one_counts.push_back(
        prog->module().run_one(one_ptrs.data(), p, one_out.data()));
  }

  std::vector<GenOut> batch_out(packets.size() *
                                static_cast<std::size_t>(gens));
  std::vector<std::int32_t> batch_counts(packets.size(), -1);
  prog->module().run_batch(batch_ptrs.data(), packets.data(),
                           static_cast<std::int32_t>(packets.size()),
                           batch_out.data(), batch_counts.data());

  EXPECT_EQ(one_cells, batch_cells);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(one_counts[i], batch_counts[i]) << "packet " << i;
  }
}

// ---------------------------------------------------------------------------
// Coupled Runtime: native engine inside the real simulator fabric
// ---------------------------------------------------------------------------

TEST(NativeRuntime, MultiNodeFabricMatchesInterpTestbed) {
  // DFW distributes flow state across nodes via located events — the app
  // that stresses route_out + fabric delivery the most.
  const auto& app = apps::app("DFW");

  interp::TestbedConfig ref_cfg;
  ref_cfg.program_name = app.key;
  ref_cfg.switch_ids = {1, 2};
  interp::Testbed tb(app.source, ref_cfg);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();

  std::string err;
  const auto prog = Program::build(tb.compilation_ptr(), &err);
  ASSERT_NE(prog, nullptr) << err;

  // Hand-built native twin of the two-node testbed, same construction
  // order: switches, schedulers, runtimes, then the full-mesh fabric.
  sim::Simulator sim;
  net::Network net(sim);
  pisa::SwitchConfig sw_cfg;
  sw_cfg.id = 1;
  pisa::Switch sw1(sim, sw_cfg);
  sw_cfg.id = 2;
  pisa::Switch sw2(sim, sw_cfg);
  sched::EventScheduler sc1(sw1, sched::SchedulerConfig{});
  sched::EventScheduler sc2(sw2, sched::SchedulerConfig{});
  Runtime rt1(prog, sc1);
  Runtime rt2(prog, sc2);
  net.add_node(sc1);
  net.add_node(sc2);
  net.connect(1, 2, sim::kUs);

  // Same injection plan on both fabrics: traffic at node 1; DFW's handlers
  // generate located/multicast events that cross to node 2.
  const auto plan = diff::make_schedule(prog->ir(), 7, 200);
  interp::Runtime& ref_rt = tb.node(1);
  for (const auto& e : plan.entries) {
    tb.sim().after(e.t, [&ref_rt, &e] { ref_rt.inject(e.event, e.args); });
    sim.after(e.t, [&rt1, &e] { rt1.inject(e.event, e.args); });
  }
  tb.sim().run_until(plan.horizon);
  sim.run_until(plan.horizon);

  for (const auto& arr : prog->ir().arrays) {
    for (const int node : {1, 2}) {
      pisa::RegisterArray* a = tb.switch_at(node).find_array(arr.name);
      pisa::RegisterArray* b =
          (node == 1 ? sw1 : sw2).find_array(arr.name);
      ASSERT_NE(a, nullptr);
      ASSERT_NE(b, nullptr);
      ASSERT_EQ(a->size(), b->size());
      for (std::int64_t i = 0; i < a->size(); ++i) {
        ASSERT_EQ(a->get(i), b->get(i))
            << arr.name << "[" << i << "] at node " << node;
      }
    }
  }
  EXPECT_EQ(tb.node(1).stats().executions, rt1.stats().executions);
  EXPECT_EQ(tb.node(2).stats().executions, rt2.stats().executions);
  EXPECT_EQ(tb.node(1).stats().generated, rt1.stats().generated);
  // Non-vacuity: traffic actually ran, and some of it crossed the fabric.
  EXPECT_GT(rt1.stats().total_executions, 0u);
  EXPECT_GT(net.delivered() + net.dropped(), 0u);
}

// ---------------------------------------------------------------------------
// Control plane over the native engine
// ---------------------------------------------------------------------------

TEST(NativeCtrl, DataPlaneAdapterDrivesNativeState) {
  CompilationPtr comp;
  const auto prog = build_app("SFW", &comp);
  ASSERT_NE(prog, nullptr);

  sim::Simulator sim;
  pisa::SwitchConfig sw_cfg;
  sw_cfg.id = 1;
  pisa::Switch sw(sim, sw_cfg);
  sched::EventScheduler sc(sw, sched::SchedulerConfig{});
  Runtime rt(prog, sc);
  ctrl::NativeControl nc(rt);

  const std::string arr = prog->ir().arrays.front().name;
  EXPECT_TRUE(nc.dataplane().has_array(arr));
  EXPECT_FALSE(nc.dataplane().has_array("no_such_array"));

  ctrl::UpdateBatch batch;
  batch.writes.push_back(ctrl::RegWrite{arr, 3, 77});
  ctrl::BatchResult last;
  batch.on_done = [&last](const ctrl::BatchResult& r) { last = r; };
  nc.plane().submit(std::move(batch));
  EXPECT_EQ(rt.array(arr)->get(3), 0);  // decoupled until an apply point
  nc.plane().flush();
  EXPECT_TRUE(last.applied);
  EXPECT_EQ(rt.array(arr)->get(3), 77);

  // Native register writes behave like interp ones: masked to cell width.
  ctrl::UpdateBatch wide;
  wide.writes.push_back(ctrl::RegWrite{arr, 4, (std::int64_t{1} << 40) | 9});
  nc.plane().submit(std::move(wide));
  nc.plane().flush();
  EXPECT_EQ(rt.array(arr)->get(4),
            rt.array(arr)->mask((std::int64_t{1} << 40) | 9));
}

// ---------------------------------------------------------------------------
// Injection validation and bounded footprint
// ---------------------------------------------------------------------------

TEST(NativeReplica, RejectsOverArityInjection) {
  const auto prog = build_app("SFW");
  ASSERT_NE(prog, nullptr);
  const ir::EventInfo* ev = nullptr;
  for (const auto& cand : prog->ir().events) {
    if (cand.has_handler) {
      ev = &cand;
      break;
    }
  }
  ASSERT_NE(ev, nullptr);

  // More args than the ABI packet can carry must be rejected up front —
  // the same reject semantics Runtime::inject has — never truncated into
  // the fixed args[kMaxArgs] array.
  std::vector<std::int64_t> over(static_cast<std::size_t>(kMaxArgs) + 1, 1);
  Replica rep(prog, ReplicaConfig{});
  EXPECT_FALSE(rep.schedule_inject(1000, ev->name, over));

  ReplicaFleet fleet(prog, FleetConfig{});
  EXPECT_FALSE(fleet.schedule_inject(1000, ev->name, over));

  // The valid arity still injects (the guard is not rejecting everything).
  std::vector<std::int64_t> ok_args(ev->params.size(), 1);
  EXPECT_TRUE(rep.schedule_inject(1000, ev->name, ok_args));
}

TEST(NativeReplica, PendingFootprintBoundedOverMillionInjections) {
  const auto prog = build_app("CM");
  ASSERT_NE(prog, nullptr);
  // A non-timer event: no self-perpetuating cascades, so the run drains
  // exactly what the cycle scheduled.
  const ir::EventInfo* traffic = nullptr;
  for (const auto& cand : prog->ir().events) {
    if (cand.has_handler &&
        !diff::is_timer_event(prog->ir(), cand.event_id)) {
      traffic = &cand;
      break;
    }
  }
  ASSERT_NE(traffic, nullptr);

  Replica rep(prog, ReplicaConfig{});
  constexpr int kCycles = 200;
  constexpr int kPerCycle = 5000;  // 1M injections total
  sim::Time t = 1000;
  std::uint64_t rng = 7;
  std::size_t high_water = 0;
  for (int c = 0; c < kCycles; ++c) {
    for (int i = 0; i < kPerCycle; ++i) {
      std::vector<std::int64_t> args;
      args.reserve(traffic->params.size());
      for (std::size_t a = 0; a < traffic->params.size(); ++a) {
        args.push_back(
            static_cast<std::int64_t>(diff::splitmix64(rng) % 4096));
      }
      rep.schedule_inject(t, traffic->name, std::move(args));
      t += 100;
    }
    rep.run_until(t + 10 * sim::kUs);
    high_water = std::max(high_water, rep.pending_footprint());
  }
  EXPECT_EQ(rep.stats().executed,
            static_cast<std::uint64_t>(kCycles) * kPerCycle);
  // The regression: consumed injections are compacted away, so the
  // footprint tracks one cycle's backlog, not the 1M-injection total.
  EXPECT_LT(high_water, static_cast<std::size_t>(4 * kPerCycle));
}

// ---------------------------------------------------------------------------
// Sharded fleet: the per-shard differential-state contract
// ---------------------------------------------------------------------------

TEST(NativeFleet, ShardCountInvariance) {
  const auto prog = build_app("SFW");
  ASSERT_NE(prog, nullptr);
  const auto plan = diff::make_burst_schedule(prog->ir(), 11, 60, 16);

  RunStats first_merged;
  std::uint64_t first_executed = 0;
  for (const int shards : {1, 2, 4, 8}) {
    FleetConfig fcfg;
    fcfg.shards = shards;
    fcfg.label_metrics = false;
    ReplicaFleet fleet(prog, fcfg);
    for (const auto& e : plan.entries) {
      ASSERT_TRUE(fleet.schedule_inject(e.t, e.event, e.args)) << e.event;
    }
    fleet.run_until(plan.horizon);

    // Each shard must match a single-threaded Replica run of the shard's
    // injection subsequence, re-derived here with the public routing hash.
    for (int s = 0; s < shards; ++s) {
      Replica ref(prog, ReplicaConfig{});
      for (const auto& e : plan.entries) {
        const ir::EventInfo* ev = prog->find_event(e.event);
        ASSERT_NE(ev, nullptr);
        if (ReplicaFleet::route(shards, -1, ev->event_id, e.args) !=
            static_cast<std::size_t>(s)) {
          continue;
        }
        ASSERT_TRUE(ref.schedule_inject(e.t, e.event, e.args));
      }
      ref.run_until(plan.horizon);
      const Replica& live = fleet.shard(static_cast<std::size_t>(s));
      for (std::size_t a = 0; a < ref.array_count(); ++a) {
        ASSERT_EQ(ref.array_cells(a), live.array_cells(a))
            << shards << " shards, shard " << s << ", array "
            << prog->ir().arrays[a].name;
      }
      EXPECT_EQ(ref.stats().executed, live.stats().executed);
    }

    // Merged totals are shard-count invariant: every injection lands on
    // exactly one shard and cascades there, so 1/2/4/8 shards partition
    // identical work.
    const RunStats merged = fleet.merged_run_stats();
    const std::uint64_t executed = fleet.merged_stats().executed;
    EXPECT_GT(executed, 0u);
    if (shards == 1) {
      first_merged = merged;
      first_executed = executed;
    } else {
      EXPECT_EQ(merged.total_executions, first_merged.total_executions);
      EXPECT_EQ(merged.executions, first_merged.executions);
      EXPECT_EQ(merged.generated, first_merged.generated);
      EXPECT_EQ(executed, first_executed);
    }
  }
}

// ---------------------------------------------------------------------------
// Batched drain across a timestamp tie-break boundary
// ---------------------------------------------------------------------------

TEST(NativeBatch, DrainAcrossTimestampTieBreakBoundary) {
  // Burst gap == pipeline latency: burst b's pipeline passes finish at
  // exactly the timestamp burst b+1's injections arrive, so every drain
  // runs into same-timestamp pending injections and (for delay-heavy apps)
  // same-timestamp PFC frames — the tie-break boundaries the drain must
  // stop at. The reference interpreter is the oracle; the per-entry loop
  // corroborates.
  for (const char* key : {"SFW", "NAT"}) {
    const auto& app = apps::app(key);
    interp::TestbedConfig cfg;
    cfg.program_name = app.key;
    interp::Testbed probe(app.source, cfg);
    ASSERT_TRUE(probe.ok()) << probe.diagnostics();
    std::string err;
    const auto prog = Program::build(probe.compilation_ptr(), &err);
    ASSERT_NE(prog, nullptr) << err;

    const sim::Time pipe = pisa::SwitchConfig{}.pipeline_latency_ns;
    const auto plan =
        diff::make_burst_schedule(prog->ir(), 23, 40, 8, /*gap_ns=*/pipe);

    const auto iref = diff::run_interp(app.source, app.key, plan);
    ReplicaConfig batched;
    batched.batch_loop = true;
    const auto nbatch = diff::run_native(prog, plan, batched);
    ReplicaConfig per_entry;
    per_entry.batch_loop = false;
    const auto nentry = diff::run_native(prog, plan, per_entry);

    EXPECT_EQ(diff::compare(prog->ir(), iref, nbatch), "") << key;
    EXPECT_EQ(diff::compare(prog->ir(), nentry, nbatch), "") << key;
    EXPECT_GT(nbatch.executed, 0u) << key;
  }
}

// ---------------------------------------------------------------------------
// Fleet under a live control plane (TSan target: ctest -L concurrency)
// ---------------------------------------------------------------------------

TEST(NativeFleet, ControlPlaneAppliesWhileFleetRuns) {
  const auto prog = build_app("SFW");
  ASSERT_NE(prog, nullptr);

  FleetConfig fcfg;
  fcfg.shards = 4;
  fcfg.label_metrics = false;
  ReplicaFleet fleet(prog, fcfg);
  ctrl::FleetDataPlane dp(fleet);

  // The ControlPlane lives on its own side scheduler (the control point in
  // a deployment); batches apply on this thread at flush boundaries, while
  // the fleet's shards run on pool workers and a producer thread submits
  // concurrently — the exact discipline native_bridge.hpp documents, and
  // what TSan checks under -DLUCID_SANITIZER=thread.
  sim::Simulator sim;
  pisa::SwitchConfig sw_cfg;
  sw_cfg.id = 99;
  pisa::Switch sw(sim, sw_cfg);
  sched::EventScheduler sc(sw, sched::SchedulerConfig{});
  ctrl::ControlPlane plane(dp, sc, ctrl::ControlPlaneConfig{});

  // A control-written array with at least 8 cells.
  const ir::ArrayInfo* arr = nullptr;
  for (const auto& cand : prog->ir().arrays) {
    if (cand.size >= 8) {
      arr = &cand;
      break;
    }
  }
  ASSERT_NE(arr, nullptr);
  ASSERT_TRUE(dp.has_array(arr->name));

  const auto plan = diff::make_burst_schedule(prog->ir(), 31, 40, 8);
  for (const auto& e : plan.entries) {
    ASSERT_TRUE(fleet.schedule_inject(e.t, e.event, e.args));
  }

  std::atomic<int> committed{0};
  std::thread producer([&plane, &committed, arr] {
    for (int i = 0; i < 64; ++i) {
      ctrl::UpdateBatch b;
      b.writes.push_back(ctrl::RegWrite{arr->name, i % 8, i & 1});
      b.on_done = [&committed](const ctrl::BatchResult& r) {
        if (r.applied) committed.fetch_add(1);
      };
      plane.submit(std::move(b));
    }
  });

  // Alternate run slices and apply ticks: shard state is only touched from
  // this thread while the fleet is quiescent (the pool join publishes it).
  for (int slice = 1; slice <= 8; ++slice) {
    fleet.run_until(plan.horizon * slice / 8);
    plane.flush();
  }
  producer.join();
  plane.flush();
  EXPECT_EQ(committed.load(), 64);
  EXPECT_GT(fleet.merged_stats().executed, 0u);

  // Determinism check after the race: a batch applied with the fleet fully
  // drained is the last writer, so every shard must agree on it
  // (replicated control tables broadcast to all shards).
  ctrl::UpdateBatch fin;
  for (std::int64_t i = 0; i < 8; ++i) {
    fin.writes.push_back(ctrl::RegWrite{arr->name, i, i & 1});
  }
  plane.submit(std::move(fin));
  plane.flush();
  const int slot = prog->ir().array_index.at(arr->name);
  for (std::int64_t i = 0; i < 8; ++i) {
    const std::int64_t want = i & 1;
    EXPECT_EQ(dp.read(arr->name, i), want) << "index " << i;
    for (int s = 0; s < fleet.shards(); ++s) {
      EXPECT_EQ(fleet.shard(static_cast<std::size_t>(s))
                    .control_read(static_cast<std::size_t>(slot), i),
                want)
          << "shard " << s << " index " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Backend registration
// ---------------------------------------------------------------------------

TEST(NativeBackend, RegisteredAndEmits) {
  register_default_backends();
  Backend* be = BackendRegistry::global().find("native");
  ASSERT_NE(be, nullptr);
  EXPECT_EQ(be->required_stage(), Stage::Layout);

  CompilerDriver driver;
  CompilationPtr comp = driver.start(apps::app("SFW").source);
  ASSERT_TRUE(driver.run_until(comp, Stage::Layout));
  const BackendArtifact art = be->emit(*comp);
  EXPECT_TRUE(art.ok) << comp->diags().render();
  EXPECT_GT(art.metrics.at("loc"), 0);
  EXPECT_GT(art.metrics.at("stages"), 0);
  // The generated module carries the four ABI entry points.
  EXPECT_NE(art.text.find("lucid_native_run_one"), std::string::npos);
  EXPECT_NE(art.text.find("lucid_native_run_batch"), std::string::npos);
}

}  // namespace
}  // namespace lucid::native
