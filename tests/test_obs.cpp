// Observability-layer tests: metrics registry semantics (bucket edges,
// quantiles, exposition formats), tracer ring/sampling behavior, and — the
// load-bearing guarantee — the *no-observable-effect* contract: running any
// app with tracing enabled must leave byte-identical register state and
// event counters versus the same run with tracing off (see tests/README.md).
//
// The *Concurrency tests carry the "concurrency" CTest label: the debug-tsan
// preset races the tracer's enable/disable/export against the sweep engine's
// worker pool and the interpreter's trace-hook attach/detach.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "core/backends.hpp"
#include "core/sweep.hpp"
#include "native/differential.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace lucid {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::Registry;
using obs::Tracer;

BackendRegistry& test_registry() {
  static BackendRegistry registry = [] {
    BackendRegistry r;
    register_default_backends(r);
    return r;
  }();
  return registry;
}

/// The global tracer is process-wide state; every tracer test starts from a
/// known-off, empty configuration and leaves it that way.
struct TracerGuard {
  TracerGuard() {
    Tracer::global().disable();
    obs::TracerConfig cfg;  // restore defaults before clearing: clear()
    Tracer::global().enable(cfg);  // stamps ring capacity onto live rings
    Tracer::global().disable();
    Tracer::global().clear();
  }
  ~TracerGuard() {
    Tracer::global().disable();
    obs::TracerConfig cfg;
    Tracer::global().enable(cfg);
    Tracer::global().disable();
    Tracer::global().clear();
  }
};

// ---------------------------------------------------------------------------
// Counter / Gauge
// ---------------------------------------------------------------------------

TEST(ObsMetrics, CounterAddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsMetrics, GaugeTracksALevel) {
  Gauge g;
  g.set(10);
  g.add(5);
  g.sub(20);
  EXPECT_EQ(g.value(), -5);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

// ---------------------------------------------------------------------------
// Histogram bucket edges
// ---------------------------------------------------------------------------

TEST(ObsMetrics, HistogramBucketOfEdges) {
  // bucket_of(v) == bit_width(v): zeros in bucket 0, powers of two open a
  // new bucket, and the top bucket (64) holds everything from 2^63 up.
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 3);
  EXPECT_EQ(Histogram::bucket_of((std::uint64_t{1} << 32) - 1), 32);
  EXPECT_EQ(Histogram::bucket_of(std::uint64_t{1} << 32), 33);
  EXPECT_EQ(Histogram::bucket_of(std::uint64_t{1} << 63), 64);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 64);
}

TEST(ObsMetrics, HistogramBucketUpperIsInclusive) {
  EXPECT_EQ(Histogram::bucket_upper(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper(1), 1u);
  EXPECT_EQ(Histogram::bucket_upper(2), 3u);
  EXPECT_EQ(Histogram::bucket_upper(63), (std::uint64_t{1} << 63) - 1);
  EXPECT_EQ(Histogram::bucket_upper(64), ~std::uint64_t{0});
  // Every value lands in the bucket whose inclusive range covers it.
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{7},
        std::uint64_t{1} << 63, ~std::uint64_t{0}}) {
    const int k = Histogram::bucket_of(v);
    EXPECT_LE(v, Histogram::bucket_upper(k)) << v;
    if (k > 0) {
      EXPECT_GT(v, Histogram::bucket_upper(k - 1)) << v;
    }
  }
}

TEST(ObsMetrics, HistogramObserveAtExtremes) {
  Histogram h;
  h.observe(0);
  h.observe(1);
  h.observe(std::uint64_t{1} << 63);
  h.observe(~std::uint64_t{0});
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(64), 2u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), ~std::uint64_t{0});
}

TEST(ObsMetrics, HistogramExactStatsAndQuantiles) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty
  for (std::uint64_t v = 1; v <= 100; ++v) h.observe(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 5050u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  // Bucket-estimated, but clamped by exact extrema and monotone in q.
  EXPECT_GE(h.quantile(0.0), 1.0);
  EXPECT_LE(h.quantile(1.0), 100.0);
  EXPECT_LE(h.quantile(0.5), h.quantile(0.99));
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

// ---------------------------------------------------------------------------
// Registry + exposition formats
// ---------------------------------------------------------------------------

TEST(ObsMetrics, RegistryHandsOutStableInstruments) {
  Registry reg;
  Counter& a = reg.counter("test_counter_total", "help text");
  Counter& b = reg.counter("test_counter_total");
  EXPECT_EQ(&a, &b);  // same name -> same instrument
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(ObsMetrics, RegistrySanitizesNamesToPrometheusCharset) {
  Registry reg;
  reg.counter("weird name-with.chars", "h").add(1);
  const std::string prom = reg.prometheus();
  EXPECT_NE(prom.find("weird_name_with_chars 1"), std::string::npos) << prom;
  EXPECT_EQ(prom.find("weird name"), std::string::npos);
}

TEST(ObsMetrics, PrometheusHistogramIsCumulativeAndEndsAtInf) {
  Registry reg;
  Histogram& h = reg.histogram("test_latency_ns", "latency");
  h.observe(0);
  h.observe(1);
  h.observe(5);
  h.observe(1000);
  const std::string prom = reg.prometheus();
  EXPECT_NE(prom.find("# TYPE test_latency_ns histogram"), std::string::npos);
  // Cumulative buckets: le="0" holds the zeros, le="1" adds bucket 1, and
  // the +Inf bucket equals _count.
  EXPECT_NE(prom.find("test_latency_ns_bucket{le=\"0\"} 1"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("test_latency_ns_bucket{le=\"1\"} 2"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("test_latency_ns_bucket{le=\"+Inf\"} 4"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("test_latency_ns_count 4"), std::string::npos);
  EXPECT_NE(prom.find("test_latency_ns_sum 1006"), std::string::npos);
}

TEST(ObsMetrics, JsonSnapshotIsWellFormedAndComplete) {
  Registry reg;
  reg.counter("c_total", "c").add(7);
  reg.gauge("g_level", "g").set(-2);
  reg.histogram("h_ns", "h").observe(42);
  const std::string js = reg.json();
  EXPECT_NE(js.find("\"counters\""), std::string::npos);
  EXPECT_NE(js.find("\"c_total\": 7"), std::string::npos) << js;
  EXPECT_NE(js.find("\"g_level\": -2"), std::string::npos) << js;
  EXPECT_NE(js.find("\"h_ns\""), std::string::npos);
  EXPECT_NE(js.find("\"count\": 1"), std::string::npos);
}

TEST(ObsMetrics, ResetZeroesButKeepsRegistrations) {
  Registry reg;
  Counter& c = reg.counter("will_reset_total", "h");
  c.add(5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);  // the cached reference stays valid
  c.add(1);
  EXPECT_NE(reg.prometheus().find("will_reset_total 1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(ObsTracer, DisabledRecordsNothing) {
  TracerGuard guard;
  Tracer& t = Tracer::global();
  const std::uint64_t before = t.retained();
  t.instant("test", "off");
  t.mark("test", "off");
  { obs::ScopedSpan span("test", "off"); }
  EXPECT_EQ(t.retained(), before);
}

TEST(ObsTracer, RecordsSpansAndInstantsWhenEnabled) {
  TracerGuard guard;
  Tracer& t = Tracer::global();
  t.enable();
  {
    obs::ScopedSpan span("cat", "span_name");
    EXPECT_TRUE(span.live());
    span.arg("n", 7);
    span.arg("tag", "hello");
  }
  t.instant("cat", "instant_name", "k", 3);
  t.disable();
  const std::string js = t.chrome_json();
  EXPECT_EQ(js.find("{\"traceEvents\": ["), 0u) << js;
  EXPECT_NE(js.find("\"name\": \"span_name\""), std::string::npos);
  EXPECT_NE(js.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(js.find("\"name\": \"instant_name\""), std::string::npos);
  EXPECT_NE(js.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(js.find("\"n\": 7"), std::string::npos);
  EXPECT_NE(js.find("\"tag\": \"hello\""), std::string::npos);
  EXPECT_NE(js.find("\"pid\": 1"), std::string::npos);
  EXPECT_NE(js.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
}

TEST(ObsTracer, RingWrapsAndCountsDropped) {
  TracerGuard guard;
  Tracer& t = Tracer::global();
  obs::TracerConfig cfg;
  cfg.ring_capacity = 8;
  t.enable(cfg);
  t.clear();  // stamp the small capacity onto this thread's live ring
  for (int i = 0; i < 20; ++i) t.instant("test", "e" + std::to_string(i));
  t.disable();
  EXPECT_EQ(t.retained(), 8u);
  EXPECT_EQ(t.recorded(), 20u);
  EXPECT_EQ(t.dropped(), 12u);
  // The survivors are the newest events; the oldest were overwritten.
  const std::string js = t.chrome_json();
  EXPECT_EQ(js.find("\"e0\""), std::string::npos);
  EXPECT_NE(js.find("\"e19\""), std::string::npos);
  EXPECT_NE(js.find("\"dropped_events\": 12"), std::string::npos) << js;
}

TEST(ObsTracer, SamplingKeepsOneInN) {
  TracerGuard guard;
  Tracer& t = Tracer::global();
  obs::TracerConfig cfg;
  cfg.sample_every = 4;
  t.enable(cfg);
  t.clear();
  // The per-thread tick's phase is unknown, but over any 400 consecutive
  // calls exactly 100 are selected.
  for (int i = 0; i < 400; ++i) t.mark("test", "sampled");
  t.disable();
  EXPECT_EQ(t.retained(), 100u);
}

TEST(ObsTracer, ClearDropsEventsAndResetsCounts) {
  TracerGuard guard;
  Tracer& t = Tracer::global();
  t.enable();
  t.instant("test", "gone");
  t.clear();
  EXPECT_EQ(t.retained(), 0u);
  EXPECT_EQ(t.recorded(), 0u);
  EXPECT_EQ(t.chrome_json().find("\"gone\""), std::string::npos);
  t.disable();
}

// ---------------------------------------------------------------------------
// No-observable-effect contract (tests/README.md)
// ---------------------------------------------------------------------------

// Running with tracing fully enabled (sample_every = 1, so every interp
// handler execution records a span) must be indistinguishable — register
// state, per-event execution/generate counts, scheduler and switch counters
// — from the same schedule with tracing off, on all ten paper apps.
TEST(ObsNoEffect, TracingLeavesRegisterStateByteIdentical) {
  TracerGuard guard;
  std::uint64_t seed = 0xD1FF0B5;
  for (const apps::AppSpec& spec : apps::all_apps()) {
    interp::TestbedConfig probe_cfg;
    probe_cfg.program_name = spec.key;
    interp::Testbed probe(spec.source, probe_cfg);
    ASSERT_TRUE(probe.ok()) << spec.key << ": " << probe.diagnostics();
    const auto sched =
        native::diff::make_schedule(probe.compilation().ir(), seed++, 300);

    Tracer::global().disable();
    const auto off = native::diff::run_interp(spec.source, spec.key, sched);
    ASSERT_TRUE(off.ok) << spec.key << ": " << off.error;

    obs::TracerConfig cfg;
    cfg.sample_every = 1;
    Tracer::global().enable(cfg);
    const auto on = native::diff::run_interp(spec.source, spec.key, sched);
    Tracer::global().disable();
    ASSERT_TRUE(on.ok) << spec.key << ": " << on.error;

    EXPECT_EQ(native::diff::compare(probe.compilation().ir(), off, on), "")
        << spec.key;
    EXPECT_GT(Tracer::global().recorded(), 0u) << spec.key;
    Tracer::global().clear();
  }
}

// ---------------------------------------------------------------------------
// Concurrency (ctest -L concurrency; raced under TSan by the tsan preset)
// ---------------------------------------------------------------------------

// Histogram and counter updates from the sweep engine's worker pool must be
// lock-free-correct: no lost updates, no torn reads.
TEST(ObsConcurrency, LockFreeUpdatesFromWorkerPool) {
  Registry reg;
  Counter& c = reg.counter("race_total");
  Histogram& h = reg.histogram("race_ns");
  constexpr std::size_t kIters = 64;
  constexpr std::uint64_t kPerIter = 1000;
  parallel_for(kIters, 8, [&](std::size_t i) {
    for (std::uint64_t v = 0; v < kPerIter; ++v) {
      c.add();
      h.observe(i * kPerIter + v);
    }
  });
  EXPECT_EQ(c.value(), kIters * kPerIter);
  EXPECT_EQ(h.count(), kIters * kPerIter);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), kIters * kPerIter - 1);
}

// The tracer's enable/disable/clear/export surface races worker threads that
// are recording: every combination must be safe (TSan-clean) and the export
// must always be parseable.
TEST(ObsConcurrency, EnableDisableExportUnderConcurrentRecording) {
  TracerGuard guard;
  Tracer& t = Tracer::global();
  obs::TracerConfig cfg;
  cfg.ring_capacity = 256;
  t.enable(cfg);
  std::atomic<bool> stop{false};
  parallel_for(9, 9, [&](std::size_t i) {
    if (i == 0) {  // the control thread: toggle, export, clear
      for (int round = 0; round < 50; ++round) {
        t.disable();
        const std::string js = t.chrome_json();
        EXPECT_EQ(js.find("{\"traceEvents\": ["), 0u);
        t.enable(cfg);
        if (round % 10 == 9) t.clear();
      }
      stop.store(true, std::memory_order_release);
      return;
    }
    while (!stop.load(std::memory_order_acquire)) {
      obs::ScopedSpan span("race", "worker");
      span.arg("i", static_cast<std::int64_t>(i));
      t.mark("race", "tick", "i", static_cast<std::int64_t>(i));
    }
  });
  t.disable();
  // Whatever survived the final clear must still export cleanly.
  const std::string js = t.chrome_json();
  EXPECT_NE(js.find("\"displayTimeUnit\""), std::string::npos);
}

// The interpreter's per-runtime trace hook attaches and detaches while sweep
// engines churn the worker pool on other threads; hooks may themselves call
// into the global tracer.
TEST(ObsConcurrency, TraceHookAttachDetachUnderConcurrentSweeps) {
  TracerGuard guard;
  obs::TracerConfig cfg;
  cfg.sample_every = 2;
  Tracer::global().enable(cfg);
  std::atomic<std::uint64_t> hook_calls{0};

  const auto& specs = apps::all_apps();
  const std::size_t n = std::min<std::size_t>(specs.size(), 6);
  parallel_for(n, 3, [&](std::size_t i) {
    const apps::AppSpec& spec = specs[i];
    if (i % 2 == 0) {
      // Sweep lane: the engine fans layout + emission across its own pool
      // while other lanes trace through the interpreter.
      const SweepEngine engine(&test_registry());
      SweepOptions opts;
      opts.variants = *parse_sweep_grid("stages=8,12");
      opts.backends = {"p4"};
      opts.workers = 2;
      opts.program_name = spec.key;
      const SweepReport report = engine.run(spec.source, opts);
      EXPECT_TRUE(report.ok) << spec.key;
      return;
    }
    // Interp lane: attach a hook, run half the schedule, detach, finish.
    interp::TestbedConfig tcfg;
    tcfg.program_name = spec.key;
    tcfg.switch_ids = {1};
    interp::Testbed tb(spec.source, tcfg);
    ASSERT_TRUE(tb.ok()) << spec.key << ": " << tb.diagnostics();
    const auto sched =
        native::diff::make_schedule(tb.compilation().ir(), i + 1, 100);
    interp::Runtime& rt = tb.node(1);
    for (const auto& e : sched.entries) {
      tb.sim().after(e.t, [&rt, &e] { rt.inject(e.event, e.args); });
    }
    rt.set_trace([&hook_calls](const std::string& name, const pisa::Packet&) {
      hook_calls.fetch_add(1, std::memory_order_relaxed);
      Tracer::global().mark("hook", name);
    });
    tb.sim().run_until(sched.horizon / 2);
    rt.set_trace(nullptr);  // detach mid-run
    tb.sim().run_until(sched.horizon);
  });
  Tracer::global().disable();
  EXPECT_GT(hook_calls.load(), 0u);
  // The hooks recorded through the global tracer from several threads; the
  // merged export must still be one well-formed document.
  const std::string js = Tracer::global().chrome_json();
  EXPECT_EQ(js.find("{\"traceEvents\": ["), 0u);
}

}  // namespace
}  // namespace lucid
