// Cross-cutting compiler properties, swept over all ten applications:
// layout invariants, determinism, P4 emission completeness, and
// failure-injection for the resource model.
#include <gtest/gtest.h>

#include <set>

#include "apps/apps.hpp"
#include "p4/emit.hpp"

namespace lucid {
namespace {

class AppProperty : public ::testing::TestWithParam<int> {
 protected:
  const apps::AppSpec& spec() const {
    return apps::all_apps()[static_cast<std::size_t>(GetParam())];
  }
  CompilationPtr compile_spec(const DriverOptions& opts = {}) {
    const CompilerDriver driver(opts);
    CompilationPtr r = driver.run(spec().source);
    EXPECT_TRUE(r->ok()) << spec().key << "\n" << r->diags().render();
    return r;
  }
};

TEST_P(AppProperty, EveryArrayPinnedToExactlyOneStage) {
  const auto r = compile_spec();
  // Every declared array that is accessed appears in exactly one stage.
  for (const auto& arr : r->ir().arrays) {
    int stages_hosting = 0;
    for (const auto& stage : r->pipeline().stages) {
      bool here = false;
      for (const auto& mt : stage.tables) {
        if (mt.array == arr.name) here = true;
      }
      if (here) ++stages_hosting;
    }
    EXPECT_LE(stages_hosting, 1) << spec().key << " array " << arr.name;
    if (stages_hosting == 1) {
      ASSERT_TRUE(r->pipeline().array_stage.count(arr.name));
    }
  }
}

TEST_P(AppProperty, StageBudgetsAreRespected) {
  opt::ResourceModel model;
  const auto r = compile_spec();
  for (const auto& stage : r->pipeline().stages) {
    EXPECT_LE(static_cast<int>(stage.tables.size()),
              model.tables_per_stage)
        << spec().key;
    EXPECT_LE(stage.salus(), model.salus_per_stage) << spec().key;
    for (const auto& mt : stage.tables) {
      EXPECT_LE(static_cast<int>(mt.members.size()),
                model.members_per_table)
          << spec().key;
      EXPECT_LE(mt.total_rules(), model.rules_per_table) << spec().key;
    }
  }
}

TEST_P(AppProperty, AllGuardedTablesArePlaced) {
  const auto r = compile_spec();
  // The merged pipeline contains every reachable non-branch atomic table.
  std::size_t placed = 0;
  for (const auto& stage : r->pipeline().stages) {
    for (const auto& mt : stage.tables) placed += mt.members.size();
  }
  std::size_t expected = 0;
  DiagnosticEngine diags;
  for (const auto& hg : r->ir().handlers) {
    expected += opt::inline_branches(hg, diags).tables.size();
  }
  EXPECT_EQ(placed, expected) << spec().key;
}

TEST_P(AppProperty, MergedTablesBindAtMostOneArray) {
  const auto r = compile_spec();
  for (const auto& stage : r->pipeline().stages) {
    for (const auto& mt : stage.tables) {
      std::set<std::string> arrays;
      for (const auto* member : mt.members) {
        if (member->kind == ir::TableKind::Mem) {
          arrays.insert(member->mem.array);
        }
      }
      EXPECT_LE(arrays.size(), 1u) << spec().key;
      if (!arrays.empty()) {
        EXPECT_EQ(*arrays.begin(), mt.array) << spec().key;
      }
    }
  }
}

TEST_P(AppProperty, SameHandlerMembersAreDisjointOrAllUnconditional) {
  const auto r = compile_spec();
  for (const auto& stage : r->pipeline().stages) {
    for (const auto& mt : stage.tables) {
      for (std::size_t i = 0; i < mt.members.size(); ++i) {
        for (std::size_t j = i + 1; j < mt.members.size(); ++j) {
          const auto& a = *mt.members[i];
          const auto& b = *mt.members[j];
          if (a.handler != b.handler) continue;
          const bool both_uncond = a.guards.empty() && b.guards.empty();
          EXPECT_TRUE(both_uncond || opt::tables_disjoint(a, b))
              << spec().key << " merged-table members overlap";
        }
      }
    }
  }
}

TEST_P(AppProperty, CompilationIsDeterministic) {
  const auto a = compile_spec();
  const auto b = compile_spec();
  EXPECT_EQ(a->layout_stats().optimized_stages, b->layout_stats().optimized_stages);
  EXPECT_EQ(a->layout_stats().unoptimized_stages, b->layout_stats().unoptimized_stages);
  EXPECT_EQ(a->layout_stats().ops_per_stage, b->layout_stats().ops_per_stage);
  EXPECT_EQ(a->pipeline().array_stage, b->pipeline().array_stage);
  const auto p1 = p4::emit(*a, spec().key);
  const auto p2 = p4::emit(*b, spec().key);
  EXPECT_EQ(p1.text, p2.text);
}

TEST_P(AppProperty, P4ContainsEveryArrayAndEvent) {
  const auto r = compile_spec();
  const auto p = p4::emit(*r, spec().key);
  for (const auto& arr : r->ir().arrays) {
    EXPECT_NE(p.text.find("reg_" + arr.name), std::string::npos)
        << spec().key << " missing register for " << arr.name;
  }
  for (const auto& ev : r->ir().events) {
    EXPECT_NE(p.text.find("header ev_" + ev.name + "_h"), std::string::npos)
        << spec().key << " missing header for " << ev.name;
    EXPECT_NE(p.text.find("parse_ev_" + ev.name), std::string::npos)
        << spec().key << " missing parser state for " << ev.name;
  }
}

TEST_P(AppProperty, TightModelDegradesGracefully) {
  // Failure injection: an absurdly tight model must not crash or loop; it
  // either lays out long (fits == false) or reports infeasibility.
  DriverOptions opts;
  opts.model.max_stages = 2;
  opts.model.tables_per_stage = 1;
  opts.model.salus_per_stage = 1;
  opts.model.members_per_table = 1;
  const CompilerDriver driver(opts);
  const CompilationPtr r = driver.run(spec().source);
  ASSERT_TRUE(r->ok()) << r->diags().render();  // front end is unaffected
  EXPECT_FALSE(r->layout_stats().fits) << spec().key;
}

INSTANTIATE_TEST_SUITE_P(AllTen, AppProperty, ::testing::Range(0, 10),
                         [](const auto& info) {
                           return apps::all_apps()[static_cast<std::size_t>(
                                                       info.param)]
                               .key;
                         });

}  // namespace
}  // namespace lucid
