// Application integration tests: every Figure 9 app compiles through the
// full pipeline (front end, effects, lowering, layout), and each app's core
// behaviour is exercised end-to-end in the interpreter on simulated
// switches.
#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "interp/testbed.hpp"
#include "support/strings.hpp"

namespace lucid::apps {
namespace {

using interp::Testbed;
using interp::TestbedConfig;
using interp::hash32;

// ---------------------------------------------------------------------------
// Every app compiles and fits the Tofino-like resource model.
// ---------------------------------------------------------------------------

class AllAppsCompile : public ::testing::TestWithParam<int> {};

TEST_P(AllAppsCompile, CompilesAndFits) {
  const AppSpec& spec = all_apps()[static_cast<std::size_t>(GetParam())];
  const CompilerDriver driver;
  const CompilationPtr r = driver.run(spec.source);
  ASSERT_TRUE(r->ok()) << spec.key << ":\n" << r->diags().render();
  const auto& stats = r->layout_stats();
  EXPECT_GT(stats.optimized_stages, 0) << spec.key;
  EXPECT_TRUE(stats.fits) << spec.key << " needs "
                          << stats.optimized_stages << " stages";
  // Optimization must not make things worse.
  EXPECT_LE(stats.optimized_stages, stats.unoptimized_stages) << spec.key;
}

INSTANTIATE_TEST_SUITE_P(AllTen, AllAppsCompile, ::testing::Range(0, 10),
                         [](const auto& info) {
                           return all_apps()[static_cast<std::size_t>(
                                                 info.param)]
                               .key;
                         });

TEST(Apps, LucidLocIsSmall) {
  // The dialect sources stay within ~2x of the paper's per-app Lucid LoC
  // (they are independent rewrites, not transcriptions).
  for (const auto& spec : all_apps()) {
    const auto loc = count_loc(spec.source);
    EXPECT_GT(loc, 20u) << spec.key;
    EXPECT_LT(loc, static_cast<std::size_t>(2 * spec.paper_lucid_loc + 60))
        << spec.key;
  }
}

// ---------------------------------------------------------------------------
// SFW
// ---------------------------------------------------------------------------

std::int64_t sfw_flowkey(std::int64_t src, std::int64_t dst) {
  return static_cast<std::int64_t>(hash32(77, {src, dst})) | 1;
}

TEST(Sfw, ReturnTrafficAllowedUnsolicitedDenied) {
  Testbed tb(app("SFW").source);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  // Outbound A(10) -> B(20) installs the flow.
  tb.inject_and_run(1, "pkt_out", {10, 20});
  // Return traffic B -> A is admitted.
  tb.inject_and_run(1, "pkt_in", {20, 10});
  EXPECT_EQ(tb.node(1).array("allowed")->get(0), 1);
  EXPECT_EQ(tb.node(1).array("denied")->get(0), 0);
  // Unsolicited C -> A is dropped.
  tb.inject_and_run(1, "pkt_in", {99, 10});
  EXPECT_EQ(tb.node(1).array("denied")->get(0), 1);
}

TEST(Sfw, FirstPacketInstallsWithoutRecirculation) {
  Testbed tb(app("SFW").source);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  tb.inject_and_run(1, "pkt_out", {10, 20});
  // Empty table: the claim memop installs in the same pass.
  EXPECT_EQ(tb.switch_at(1).recirculations(), 0u);
}

TEST(Sfw, CuckooChainResolvesCollisions) {
  Testbed tb(app("SFW").source);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  // Force a double collision: occupy both candidate slots of a victim flow.
  const std::int64_t k = sfw_flowkey(10, 20);
  const std::int64_t i1 = hash32(1, {k}) & 1023;
  const std::int64_t i2 = hash32(2, {k}) & 1023;
  tb.node(1).array("key1")->set(i1, 555);  // some other flow
  tb.node(1).array("key2")->set(i2, 777);
  tb.inject_and_run(1, "pkt_out", {10, 20});
  // The install went through the cuckoo chain (>= 1 recirculation)...
  EXPECT_GE(tb.switch_at(1).recirculations(), 1u);
  EXPECT_GE(tb.node(1).stats().executions.count("cuckoo_insert") ? tb.node(1).stats().executions.at("cuckoo_insert") : 0u, 1u);
  // ...and afterwards the flow is in bank 1 (cuckoo_insert displaces into
  // bank 1 and re-homes the victim).
  EXPECT_EQ(tb.node(1).array("key1")->get(i1), k);
  // Return traffic is admitted.
  tb.inject_and_run(1, "pkt_in", {20, 10});
  EXPECT_EQ(tb.node(1).array("allowed")->get(0), 1);
}

TEST(Sfw, ScanDeletesIdleFlows) {
  Testbed tb(app("SFW").source);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  tb.inject_and_run(1, "pkt_out", {10, 20});
  const std::int64_t k = sfw_flowkey(10, 20);
  const std::int64_t i1 = hash32(1, {k}) & 1023;
  ASSERT_EQ(tb.node(1).array("key1")->get(i1), k);
  // 150 ms later (> 100 ms timeout), a scan step at exactly that slot
  // triggers deletion.
  tb.sim().run_until(150 * sim::kMs);
  tb.node(1).inject("scan1", {i1});
  tb.sim().run_until(155 * sim::kMs);
  EXPECT_EQ(tb.node(1).array("key1")->get(i1), 0);
  EXPECT_GE(tb.node(1).stats().executions.count("del1") ? tb.node(1).stats().executions.at("del1") : 0u, 1u);
  // Return traffic is now denied again.
  tb.node(1).inject("pkt_in", {20, 10});
  tb.sim().run_until(156 * sim::kMs);
  EXPECT_EQ(tb.node(1).array("denied")->get(0), 1);
}

// ---------------------------------------------------------------------------
// RR
// ---------------------------------------------------------------------------

TEST(Rr, ProbesRefreshLinkState) {
  TestbedConfig cfg;
  cfg.switch_ids = {1, 2, 3};
  Testbed tb(app("RR").source, cfg);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  tb.node(1).inject("probe_timer", {0});
  tb.sim().run_until(2 * sim::kMs);
  // Node 1 pinged 2 and 3; replies refreshed linkstate[2] and [3].
  EXPECT_GT(tb.node(1).array("linkstate")->get(2), 0);
  EXPECT_GT(tb.node(1).array("linkstate")->get(3), 0);
  EXPECT_GE(tb.node(2).stats().executions.count("probe") ? tb.node(2).stats().executions.at("probe") : 0u, 1u);
  EXPECT_GE(tb.node(3).stats().executions.count("probe") ? tb.node(3).stats().executions.at("probe") : 0u, 1u);
}

TEST(Rr, DeadLinkTriggersQueryAndAdoptsRoute) {
  TestbedConfig cfg;
  cfg.switch_ids = {1, 2, 3};
  Testbed tb(app("RR").source, cfg);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  const int dst = 7;
  // Initialize: node 1 knows nothing (pathlen INF); node 2 has a 1-hop
  // path; node 3 is far.
  tb.node(1).array("pathlens")->fill(1000000);
  tb.node(2).array("pathlens")->fill(1000000);
  tb.node(3).array("pathlens")->fill(1000000);
  tb.node(2).array("pathlens")->set(dst, 1);
  tb.node(3).array("pathlens")->set(dst, 5);
  // Let virtual time pass the staleness horizon first: right after boot,
  // `now - 0` is below STALE and every link still looks alive.
  tb.sim().run_until(60 * sim::kMs);
  // Node 1 forwards to a next hop whose link is stale (linkstate == 0) —
  // this triggers the distributed route query.
  tb.inject_and_run(1, "pkt", {dst});
  EXPECT_EQ(tb.node(1).array("drop_count")->get(0), 1);
  // Replies arrived; node 1 adopted the best (node 2's) route.
  EXPECT_EQ(tb.node(1).array("pathlens")->get(dst), 2);
  EXPECT_EQ(tb.node(1).array("nexthops")->get(dst), 2);
}

TEST(Rr, FreshLinkForwardsWithoutQuery) {
  TestbedConfig cfg;
  cfg.switch_ids = {1, 2, 3};
  Testbed tb(app("RR").source, cfg);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  tb.node(1).inject("probe_timer", {0});
  tb.sim().run_until(1 * sim::kMs);
  tb.node(1).array("nexthops")->set(7, 2);
  tb.node(1).inject("pkt", {7});
  tb.sim().run_until(2 * sim::kMs);
  EXPECT_EQ(tb.node(1).array("fwd_count")->get(0), 1);
  EXPECT_EQ(tb.node(1).array("drop_count")->get(0), 0);
}

// ---------------------------------------------------------------------------
// DNS
// ---------------------------------------------------------------------------

TEST(Dns, HeavyQueriedVictimGetsBlocked) {
  TestbedConfig cfg;
  cfg.switch_ids = {1, 9};  // 9 is the collector
  Testbed tb(app("DNS").source, cfg);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  const int victim = 1234;
  // Below threshold: responses pass.
  tb.inject_and_run(1, "dns_resp", {55, victim, 1});
  EXPECT_EQ(tb.node(1).array("passed")->get(0), 1);
  // 150 spoofed queries "from" the victim push the sketch over THRESH=100.
  for (int i = 0; i < 150; ++i) {
    tb.node(1).inject("dns_req", {victim, 8, i});
  }
  tb.settle();
  // Responses to the victim are now blocked; others still pass.
  tb.inject_and_run(1, "dns_resp", {55, victim, 2});
  EXPECT_EQ(tb.node(1).array("blocked")->get(0), 1);
  tb.inject_and_run(1, "dns_resp", {55, 4321, 3});
  EXPECT_EQ(tb.node(1).array("passed")->get(0), 2);
  // The collector heard about it.
  EXPECT_GE(tb.node(9).array("reports")->get(0), 1);
}

TEST(Dns, DecaySweepClearsSketch) {
  Testbed tb(app("DNS").source);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  const int victim = 777;
  for (int i = 0; i < 10; ++i) tb.node(1).inject("dns_req", {victim, 8, i});
  tb.settle();
  const auto h0 = hash32(10, {victim}) & 1023;
  ASSERT_EQ(tb.node(1).array("cm0")->get(h0), 10);
  // One decay step at exactly that column clears it.
  tb.node(1).inject("decay_step", {h0});
  tb.sim().run_until(tb.sim().now() + 500 * sim::kUs);
  EXPECT_EQ(tb.node(1).array("cm0")->get(h0), 0);
}

TEST(Dns, BankSwapFlipsActiveBank) {
  Testbed tb(app("DNS").source);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  EXPECT_EQ(tb.node(1).array("active_bank")->get(0), 0);
  // age_step at the last index wraps and triggers the swap.
  tb.node(1).inject("age_step", {2047});
  tb.sim().run_until(tb.sim().now() + 500 * sim::kUs);
  EXPECT_EQ(tb.node(1).array("active_bank")->get(0), 1);
}

// ---------------------------------------------------------------------------
// *Flow
// ---------------------------------------------------------------------------

TEST(StarFlow, FullBatchEvictsAndExports) {
  TestbedConfig cfg;
  cfg.switch_ids = {1, 9};
  Testbed tb(app("StarFlow").source, cfg);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  const int flow = 4242;
  for (int seq = 0; seq < 4; ++seq) {
    tb.node(1).inject("pkt", {flow, 100 + seq});
  }
  tb.settle();
  EXPECT_EQ(tb.node(1).array("evicted")->get(0), 1);
  EXPECT_EQ(tb.node(9).array("exported")->get(0), 1);
  // The cache line was freed for reuse.
  const auto idx = hash32(30, {flow}) & 1023;
  EXPECT_EQ(tb.node(1).array("ft_key")->get(idx), 0);
  EXPECT_EQ(tb.node(1).array("ft_cnt")->get(idx), 0);
  EXPECT_EQ(tb.node(1).array("buf0")->get(idx), 0);
}

TEST(StarFlow, CollidingFlowIsSampledAway) {
  Testbed tb(app("StarFlow").source);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  const int flow = 4242;
  const auto idx = hash32(30, {flow}) & 1023;
  tb.node(1).array("ft_key")->set(idx, 999);  // line owned by another flow
  tb.inject_and_run(1, "pkt", {flow, 5});
  EXPECT_EQ(tb.node(1).array("collisions")->get(0), 1);
  EXPECT_EQ(tb.node(1).array("buf0")->get(idx), 0);
}

// ---------------------------------------------------------------------------
// SRO
// ---------------------------------------------------------------------------

TEST(Sro, WriteReplicatesToPeersAndAcks) {
  TestbedConfig cfg;
  cfg.switch_ids = {1, 2, 3};
  Testbed tb(app("SRO").source, cfg);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  tb.inject_and_run(1, "write", {5, 42});
  EXPECT_EQ(tb.node(1).array("vals")->get(5), 42);
  EXPECT_EQ(tb.node(2).array("vals")->get(5), 42);
  EXPECT_EQ(tb.node(3).array("vals")->get(5), 42);
  // Two replicas acked the writer.
  EXPECT_EQ(tb.node(1).array("acks")->get(0), 2);
}

TEST(Sro, StaleSyncIsIgnored) {
  TestbedConfig cfg;
  cfg.switch_ids = {1, 2, 3};
  Testbed tb(app("SRO").source, cfg);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  // Replica 2 already saw sequence number 10 for cell 5.
  tb.node(2).array("seqs")->set(5, 10);
  tb.node(2).array("vals")->set(5, 1000);
  // A stale sync (seq 3) arrives directly.
  tb.node(1).inject("sync", {1, 5, 42, 3}, 0, 2);
  tb.settle();
  EXPECT_EQ(tb.node(2).array("vals")->get(5), 1000);  // unchanged
  // A newer sync applies.
  tb.node(1).inject("sync", {1, 5, 77, 11}, 0, 2);
  tb.settle();
  EXPECT_EQ(tb.node(2).array("vals")->get(5), 77);
}

// ---------------------------------------------------------------------------
// DFW / DFW + aging
// ---------------------------------------------------------------------------

TEST(Dfw, ReturnTrafficAdmittedAtAnyPeer) {
  TestbedConfig cfg;
  cfg.switch_ids = {1, 2, 3};
  Testbed tb(app("DFW").source, cfg);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  tb.inject_and_run(1, "pkt_out", {10, 20});
  // The reverse flow is admitted at peer switch 2 (synced Bloom filter).
  tb.inject_and_run(2, "pkt_in", {20, 10});
  EXPECT_EQ(tb.node(2).array("allowed")->get(0), 1);
  // Unknown traffic is denied at node 3.
  tb.inject_and_run(3, "pkt_in", {8, 9});
  EXPECT_EQ(tb.node(3).array("denied")->get(0), 1);
}

TEST(DfwAging, SwapAndSweepExpireOldFlows) {
  TestbedConfig cfg;
  cfg.switch_ids = {1, 2, 3};
  Testbed tb(app("DFWA").source, cfg);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  tb.inject_and_run(1, "pkt_out", {10, 20});
  tb.inject_and_run(1, "pkt_in", {20, 10});
  EXPECT_EQ(tb.node(1).array("allowed")->get(0), 1);
  // Swap: bank B becomes active. The flow (in bank A) must still match.
  tb.inject_and_run(1, "swap_banks", {0});
  EXPECT_EQ(tb.node(1).array("active_bank")->get(0), 1);
  tb.inject_and_run(1, "pkt_in", {20, 10});
  EXPECT_EQ(tb.node(1).array("allowed")->get(0), 2);
  // Clear the (now inactive) bank A slots for this flow, then swap again:
  // the authorization has aged out.
  const auto h0 = hash32(40, {10, 20}) & 4095;
  const auto h1 = hash32(41, {10, 20}) & 4095;
  tb.inject_and_run(1, "age_step", {h0});
  tb.inject_and_run(1, "age_step", {h1});
  tb.inject_and_run(1, "pkt_in", {20, 10});
  EXPECT_EQ(tb.node(1).array("denied")->get(0), 1);
}

// ---------------------------------------------------------------------------
// RIP
// ---------------------------------------------------------------------------

TEST(Rip, AdvertisementRelaxesDistance) {
  TestbedConfig cfg;
  cfg.switch_ids = {1, 2, 3};
  Testbed tb(app("RIP").source, cfg);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  // Node 3 is the destination; 1 and 2 boot at INF.
  tb.inject_and_run(1, "boot", {1000000});
  tb.inject_and_run(2, "boot", {1000000});
  tb.inject_and_run(3, "boot", {0});
  // Node 3 advertises (its group {2,3} covers node 2).
  tb.node(3).inject("adv_timer", {0});
  tb.settle(10 * sim::kMs);
  EXPECT_EQ(tb.node(2).array("dist")->get(0), 1);
  EXPECT_EQ(tb.node(2).array("nexthop")->get(0), 3);
  // Node 2 forwards packets along the adopted route.
  tb.node(2).inject("pkt", {64});
  tb.settle(sim::kMs);
  EXPECT_EQ(tb.node(2).array("fwd")->get(0), 1);
}

// ---------------------------------------------------------------------------
// NAT
// ---------------------------------------------------------------------------

TEST(Nat, FirstPacketAllocatesMapping) {
  Testbed tb(app("NAT").source);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  tb.inject_and_run(1, "pkt_out", {10, 5555});
  EXPECT_EQ(tb.node(1).array("translated")->get(0), 1);
  EXPECT_EQ(tb.node(1).array("next_port")->get(0), 1);
  // The reverse mapping points back at the flow.
  const auto k = (static_cast<std::int64_t>(hash32(50, {10, 5555})) | 1);
  EXPECT_EQ(tb.node(1).array("rev_key")->get(0), k);
  // Inbound to the allocated external port 0 translates.
  tb.inject_and_run(1, "pkt_in", {0});
  EXPECT_EQ(tb.node(1).array("translated")->get(0), 2);
  // Inbound to an unallocated port drops.
  tb.inject_and_run(1, "pkt_in", {123});
  EXPECT_EQ(tb.node(1).array("dropped")->get(0), 1);
}

TEST(Nat, SecondPacketReusesMapping) {
  Testbed tb(app("NAT").source);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  tb.inject_and_run(1, "pkt_out", {10, 5555});
  tb.inject_and_run(1, "pkt_out", {10, 5555});
  EXPECT_EQ(tb.node(1).array("next_port")->get(0), 1);  // one allocation
  EXPECT_EQ(tb.node(1).array("translated")->get(0), 2);
}

// ---------------------------------------------------------------------------
// CM
// ---------------------------------------------------------------------------

TEST(Cm, SketchCountsAndExportClears) {
  TestbedConfig cfg;
  cfg.switch_ids = {1, 9};
  Testbed tb(app("CM").source, cfg);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  const int flow = 31337;
  for (int i = 0; i < 5; ++i) tb.node(1).inject("pkt", {flow});
  tb.settle();
  const auto h0 = hash32(60, {flow}) & 1023;
  EXPECT_EQ(tb.node(1).array("cm0")->get(h0), 5);
  // Query is served from the live sketch.
  tb.inject_and_run(1, "query", {flow});
  EXPECT_EQ(tb.node(1).array("queries")->get(0), 1);
  // An export step at that column read-and-clears and ships a report.
  tb.node(1).inject("export_step", {h0});
  tb.sim().run_until(tb.sim().now() + 500 * sim::kUs);
  EXPECT_EQ(tb.node(1).array("cm0")->get(h0), 0);
  EXPECT_GE(tb.node(9).array("reports")->get(0), 1);
}

}  // namespace
}  // namespace lucid::apps
