// The incremental front end: the decl-span scanner, AST splicing, the
// per-compilation span cache, the synthetic program generator, and the
// parallel Sema body checks.
//
// The load-bearing guarantees:
//
//   * frontend::scan_decl_spans cuts a buffer into exactly one span per
//     top-level decl and refuses (nullopt) anything irregular — incremental
//     parse is an optimization, never a semantic fork;
//   * frontend::incremental_parse splices unchanged decls *by pointer* from
//     the previous AST (address-asserted) and re-parses only edited spans;
//   * CompilerDriver::recompile wires the splice in end to end: Parse's
//     decls_reused counts spliced nodes, Layout's counts handlers carried by
//     the patched Phase A analysis, and the artifacts stay byte-identical to
//     a cold compile — on the paper apps (test_incremental.cpp) and on
//     generated programs here;
//   * frontend::generate_program is deterministic (same config -> same
//     bytes, on every platform);
//   * Sema with N workers produces byte-identical diagnostics and artifacts
//     for every N, clean programs and error programs alike.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "core/backends.hpp"
#include "core/driver.hpp"
#include "frontend/incremental_parse.hpp"
#include "frontend/parser.hpp"
#include "frontend/progen.hpp"
#include "interp/runtime.hpp"
#include "pisa/switch.hpp"
#include "sim/simulator.hpp"

namespace lucid {
namespace {

using frontend::DeclKind;
using frontend::DeclSpan;
using frontend::Program;
using frontend::ProgenConfig;

BackendRegistry& test_registry() {
  static BackendRegistry registry = [] {
    BackendRegistry r;
    register_default_backends(r);
    return r;
  }();
  return registry;
}

Program parse_ok(const std::string& source) {
  DiagnosticEngine diags{source};
  Program p = frontend::Parser::parse(source, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  return p;
}

std::string diag_transcript(const Compilation& comp) {
  std::string out;
  for (const Diagnostic& d : comp.diags().all()) {
    out += std::string(severity_name(d.severity)) + "|" + d.code + "|" +
           d.message + "\n";
  }
  return out;
}

/// Deterministic interpreter run fingerprint (register cells + counters);
/// mirrors the helper in test_incremental.cpp.
std::string interp_fingerprint(const ConstCompilationPtr& comp) {
  sim::Simulator simulator;
  pisa::SwitchConfig sc;
  sc.id = 1;
  pisa::Switch sw(simulator, sc);
  sched::EventScheduler node(sw, {});
  interp::Runtime runtime(comp, node);

  int salt = 1;
  for (const ir::EventInfo& ev : comp->ir().events) {
    if (!ev.has_handler) continue;
    for (int round = 0; round < 3; ++round) {
      std::vector<interp::Value> args;
      args.reserve(ev.params.size());
      for (std::size_t p = 0; p < ev.params.size(); ++p) {
        args.push_back((salt * 37 + static_cast<int>(p) * 11 + round) % 251);
      }
      runtime.inject(ev.name, std::move(args));
      ++salt;
    }
  }
  simulator.run_until(5 * sim::kMs);

  std::string fp;
  for (const ir::ArrayInfo& arr : comp->ir().arrays) {
    const pisa::RegisterArray* ra = runtime.array(arr.name);
    fp += arr.name + ":";
    for (std::int64_t i = 0; i < ra->size(); ++i) {
      fp += std::to_string(ra->get(i)) + ",";
    }
    fp += ";";
  }
  for (const auto& [ev, n] : runtime.stats().executions) {
    fp += "x " + ev + "=" + std::to_string(n) + ";";
  }
  for (const auto& [ev, n] : runtime.stats().generated) {
    fp += "g " + ev + "=" + std::to_string(n) + ";";
  }
  return fp;
}

constexpr const char* kChain =
    "const int LIMIT = 10;\n"
    "const int MASK = 15;\n"
    "global a = new Array<<32>>(16);\n"
    "global b = new Array<<32>>(16);\n"
    "memop plus(int cur, int x) { return cur + x; }\n"
    "fun int bump(int v) { return v + LIMIT; }\n"
    "event tick(int i);\n"
    "event tock(int i);\n"
    "handle tick(int i) { Array.set(a, i & MASK, plus, bump(i)); }\n"
    "handle tock(int i) { Array.set(b, i & MASK, plus, 1); }\n";

// ---------------------------------------------------------------------------
// scan_decl_spans
// ---------------------------------------------------------------------------

TEST(DeclScanner, OneSpanPerDeclOnEveryApp) {
  for (const apps::AppSpec& spec : apps::all_apps()) {
    SCOPED_TRACE(spec.key);
    const auto spans = frontend::scan_decl_spans(spec.source);
    ASSERT_TRUE(spans.has_value());
    const Program p = parse_ok(spec.source);
    ASSERT_EQ(spans->size(), p.decls.size());
    // Spans are in order, non-overlapping, and each covers its whole decl
    // (keyword byte through terminator byte).
    std::size_t prev_end = 0;
    for (const DeclSpan& s : *spans) {
      EXPECT_GE(s.begin, prev_end);
      EXPECT_LT(s.begin, s.end);
      prev_end = s.end;
      const char last = spec.source[s.end - 1];
      EXPECT_TRUE(last == ';' || last == '}') << spec.source.substr(s.begin, s.end - s.begin);
    }
  }
}

TEST(DeclScanner, HashCoversExactlyTheSpanBytes) {
  const auto before = frontend::scan_decl_spans(kChain);
  ASSERT_TRUE(before.has_value());
  // Editing one decl's body changes that span's hash and no other.
  std::string edited = kChain;
  const std::size_t at = edited.find("LIMIT = 10");
  ASSERT_NE(at, std::string::npos);
  edited.replace(at, 10, "LIMIT = 99");
  const auto after = frontend::scan_decl_spans(edited);
  ASSERT_TRUE(after.has_value());
  ASSERT_EQ(before->size(), after->size());
  for (std::size_t i = 0; i < before->size(); ++i) {
    EXPECT_EQ((*before)[i].hash != (*after)[i].hash, i == 0) << i;
  }
  // Pure comment/whitespace edits outside spans change no hash at all.
  const auto commented =
      frontend::scan_decl_spans("// leading\n" + std::string(kChain) +
                                "/* trailing */\n");
  ASSERT_TRUE(commented.has_value());
  ASSERT_EQ(commented->size(), before->size());
  for (std::size_t i = 0; i < before->size(); ++i) {
    EXPECT_EQ((*commented)[i].hash, (*before)[i].hash) << i;
  }
}

TEST(DeclScanner, RefusesIrregularBuffers) {
  // Unterminated block comment.
  EXPECT_FALSE(frontend::scan_decl_spans("const int A = 1; /* oops").has_value());
  // Unknown leading keyword.
  EXPECT_FALSE(frontend::scan_decl_spans("typedef int x;").has_value());
  // A stray ';' between decls starts a span with an empty keyword.
  EXPECT_FALSE(
      frontend::scan_decl_spans("memop m(int c, int x) { return c; };\n")
          .has_value());
  // Unterminated decl (EOF before the closing brace).
  EXPECT_FALSE(frontend::scan_decl_spans("handle e(int i) { ").has_value());
  // Unbalanced closing brace.
  EXPECT_FALSE(frontend::scan_decl_spans("const int A = 1; }").has_value());
  // The empty buffer is regular: zero decls.
  const auto empty = frontend::scan_decl_spans("  // nothing\n");
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
}

// ---------------------------------------------------------------------------
// incremental_parse
// ---------------------------------------------------------------------------

TEST(IncrementalParse, SplicesEveryUntouchedDeclByPointer) {
  const std::string prev_src = kChain;
  const Program prev = parse_ok(prev_src);
  const auto prev_spans = frontend::scan_decl_spans(prev_src);
  ASSERT_TRUE(prev_spans.has_value());

  std::string edited = prev_src;
  const std::size_t h = edited.find("handle tick");
  const std::size_t brace = edited.find('{', h);
  edited.insert(brace + 1, " int __e = 3; ");

  DiagnosticEngine diags{edited};
  const auto inc = frontend::incremental_parse(edited, prev_src, *prev_spans,
                                               prev, diags);
  ASSERT_TRUE(inc.has_value());
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  ASSERT_EQ(inc->program.decls.size(), prev.decls.size());
  ASSERT_EQ(inc->spliced_from.size(), prev.decls.size());
  EXPECT_EQ(inc->reused, static_cast<int>(prev.decls.size()) - 1);
  EXPECT_EQ(inc->spans.size(), prev.decls.size());
  for (std::size_t i = 0; i < inc->program.decls.size(); ++i) {
    const bool edited_decl =
        inc->program.decls[i]->kind == DeclKind::Handler &&
        inc->program.decls[i]->name == "tick";
    EXPECT_EQ(inc->spliced_from[i] < 0, edited_decl) << i;
    if (!edited_decl) {
      // Spliced = the previous AST node itself, not a copy.
      EXPECT_EQ(inc->program.decls[i].get(),
                prev.decls[static_cast<std::size_t>(inc->spliced_from[i])].get());
    }
  }
}

TEST(IncrementalParse, RefusesAPrevSpanDeclMismatch) {
  const Program prev = parse_ok(kChain);
  std::vector<DeclSpan> wrong;  // size != prev.decls.size()
  DiagnosticEngine diags{kChain};
  EXPECT_FALSE(frontend::incremental_parse(kChain, kChain, wrong, prev, diags)
                   .has_value());
}

TEST(IncrementalParse, ReparsedSpansKeepWholeFilePositions) {
  // Break the *last* decl; the error's line must be its whole-file line,
  // not line 1 of the re-lexed span.
  std::string bad = kChain;
  const std::size_t at = bad.find("Array.set(b, i & MASK, plus, 1);");
  ASSERT_NE(at, std::string::npos);
  bad.insert(at, "@ ");
  const Program prev = parse_ok(kChain);
  const auto prev_spans = frontend::scan_decl_spans(kChain);
  ASSERT_TRUE(prev_spans.has_value());
  DiagnosticEngine diags{bad};
  const auto inc =
      frontend::incremental_parse(bad, kChain, *prev_spans, prev, diags);
  ASSERT_TRUE(inc.has_value());
  ASSERT_TRUE(diags.has_errors());
  EXPECT_GE(diags.all().front().range.begin.line, 10u) << diags.render();
}

// ---------------------------------------------------------------------------
// The driver end of the splice
// ---------------------------------------------------------------------------

TEST(RecompileParse, SplicesAndCountsReusedDecls) {
  const CompilerDriver driver({}, &test_registry());
  const CompilationPtr prev = driver.run(kChain, Stage::Layout);
  ASSERT_TRUE(prev->ok());

  std::string edited = kChain;
  edited.insert(edited.find('{', edited.find("handle tick")) + 1,
                " int __e = 3; ");
  const CompilationPtr rec = driver.recompile(prev, edited);
  ASSERT_TRUE(driver.run_until(rec, Stage::Layout)) << rec->diags().render();

  // Parse spliced all 9 untouched decls; the address-level proof: a clean
  // decl (the tock handler) is prev's node.
  EXPECT_EQ(rec->record(Stage::Parse).decls_reused, 9);
  const auto find_decl = [](const Program& p, DeclKind kind,
                            std::string_view name) -> const frontend::Decl* {
    for (const auto& d : p.decls) {
      if (d->kind == kind && d->name == name) return d.get();
    }
    return nullptr;
  };
  EXPECT_EQ(find_decl(rec->ast(), DeclKind::Handler, "tock"),
            find_decl(prev->ast(), DeclKind::Handler, "tock"));
  // The dirty decl was un-shared (deep-cloned) before its body re-check.
  EXPECT_NE(find_decl(rec->ast(), DeclKind::Handler, "tick"),
            find_decl(prev->ast(), DeclKind::Handler, "tick"));

  // Layout's decls_reused counts the handlers the patched Phase A analysis
  // carried over: everything but the edited tick handler.
  EXPECT_EQ(rec->record(Stage::Layout).decls_reused, 1);
  // And the human `--time-passes` table surfaces the Parse reuse.
  EXPECT_NE(rec->timing_report().find("(reused 9 decls)"), std::string::npos)
      << rec->timing_report();
}

TEST(RecompileParse, SpanCacheIsSharedAcrossEdits) {
  const CompilerDriver driver({}, &test_registry());
  const CompilationPtr prev = driver.run(kChain, Stage::Layout);
  ASSERT_TRUE(prev->ok());
  const auto* spans = prev->decl_spans();
  ASSERT_NE(spans, nullptr);
  EXPECT_EQ(spans->size(), prev->ast().decls.size());
  // Same table object on every access (computed once).
  EXPECT_EQ(prev->decl_spans(), spans);

  // An incremental parse seeds the new compilation's cache with the table
  // it already scanned — becoming the next edit's prev costs no new scan.
  std::string edited = kChain;
  edited.insert(edited.find('{', edited.find("handle tick")) + 1,
                " int __e = 3; ");
  const CompilationPtr rec = driver.recompile(prev, edited);
  ASSERT_TRUE(rec->ok());
  const auto* rec_spans = rec->decl_spans();
  ASSERT_NE(rec_spans, nullptr);
  EXPECT_EQ(rec_spans->size(), rec->ast().decls.size());
}

TEST(RecompileParse, DeclInsertionAndDeletionStillSplice) {
  // The splice is by span content, not position: growing or shrinking the
  // decl list must still reuse every untouched decl.
  const CompilerDriver driver({}, &test_registry());
  const CompilationPtr prev = driver.run(kChain, Stage::Layout);
  ASSERT_TRUE(prev->ok());

  // Insert a brand-new const between existing decls: 10 spliced, 1 fresh.
  std::string grown = kChain;
  grown.insert(grown.find("global a"), "const int EXTRA = 7;\n");
  const CompilationPtr grec = driver.recompile(prev, grown);
  ASSERT_TRUE(driver.run_until(grec, Stage::Layout)) << grec->diags().render();
  EXPECT_EQ(grec->record(Stage::Parse).decls_reused, 10);
  EXPECT_EQ(grec->ast().decls.size(), 11u);

  // Delete the tock handler: all 9 survivors spliced.
  std::string shrunk = kChain;
  const std::string tock =
      "handle tock(int i) { Array.set(b, i & MASK, plus, 1); }\n";
  const std::size_t at = shrunk.find(tock);
  ASSERT_NE(at, std::string::npos);
  shrunk.erase(at, tock.size());
  const CompilationPtr srec = driver.recompile(prev, shrunk);
  ASSERT_TRUE(driver.run_until(srec, Stage::Layout)) << srec->diags().render();
  EXPECT_EQ(srec->record(Stage::Parse).decls_reused, 9);
  EXPECT_EQ(srec->ast().decls.size(), 9u);

  // Both still match cold compiles byte for byte.
  for (const std::string* src : {&grown, &shrunk}) {
    const CompilationPtr cold = driver.run(*src, Stage::Layout);
    ASSERT_TRUE(cold->ok());
    const CompilationPtr rec = *src == grown ? grec : srec;
    const BackendArtifact a = driver.emit(cold, "p4");
    const BackendArtifact b = driver.emit(rec, "p4");
    ASSERT_TRUE(a.ok && b.ok);
    EXPECT_EQ(a.text, b.text);
  }
}

// ---------------------------------------------------------------------------
// The synthetic program generator
// ---------------------------------------------------------------------------

TEST(Progen, DeterministicAcrossCallsAndSensitiveToTheSeed) {
  ProgenConfig cfg;
  cfg.handlers = 8;
  EXPECT_EQ(frontend::generate_program(cfg), frontend::generate_program(cfg));
  ProgenConfig other = cfg;
  other.seed = cfg.seed + 1;
  EXPECT_NE(frontend::generate_program(cfg),
            frontend::generate_program(other));
}

TEST(Progen, ScalesToATthousandDeclsAndStaysWellFormed) {
  ProgenConfig cfg;
  cfg.handlers = 490;  // 1002 decls with the default satellite counts
  const std::string src = frontend::generate_program(cfg);
  ASSERT_GE(cfg.decl_count(), 1000);
  const Program p = parse_ok(src);
  EXPECT_EQ(p.decls.size(), static_cast<std::size_t>(cfg.decl_count()));
  // And the span scanner agrees with the parser on every boundary.
  const auto spans = frontend::scan_decl_spans(src);
  ASSERT_TRUE(spans.has_value());
  EXPECT_EQ(spans->size(), p.decls.size());
}

TEST(Progen, GeneratedEditsMatchColdByteForByte) {
  // The differential gate on generated programs: small configs that fit the
  // 12-stage model, so emitted artifacts can be byte-compared end to end.
  struct Case {
    int handlers;
    int stmts;
    std::uint64_t seed;
    int edit_which;
  };
  for (const Case& tc : {Case{3, 6, 0x5eedULL, 1}, Case{4, 8, 77ULL, 3}}) {
    SCOPED_TRACE(testing::Message() << "handlers=" << tc.handlers
                                    << " seed=" << tc.seed);
    ProgenConfig cfg;
    cfg.handlers = tc.handlers;
    cfg.stmts_per_handler = tc.stmts;
    cfg.seed = tc.seed;
    cfg.arrays = 4;
    cfg.consts = 4;
    cfg.memops = 2;
    cfg.funs = 2;
    const std::string src = frontend::generate_program(cfg);
    const std::string edited =
        frontend::edit_one_handler(src, tc.edit_which);
    ASSERT_NE(src, edited);

    const CompilerDriver driver({}, &test_registry());
    const CompilationPtr prev = driver.run(src, Stage::Layout);
    ASSERT_TRUE(prev->ok()) << prev->diags().render();
    const CompilationPtr cold = driver.run(edited, Stage::Layout);
    ASSERT_TRUE(cold->ok()) << cold->diags().render();
    const CompilationPtr rec = driver.recompile(prev, edited);
    ASSERT_TRUE(driver.run_until(rec, Stage::Layout)) << rec->diags().render();

    EXPECT_GT(rec->record(Stage::Parse).decls_reused, 0);
    EXPECT_GT(rec->record(Stage::Sema).decls_reused, 0);
    for (const char* backend : {"p4", "ebpf"}) {
      SCOPED_TRACE(backend);
      const BackendArtifact a = driver.emit(cold, backend);
      const BackendArtifact b = driver.emit(rec, backend);
      ASSERT_TRUE(a.ok) << cold->diags().render();
      ASSERT_TRUE(b.ok) << rec->diags().render();
      EXPECT_EQ(a.text, b.text);
      EXPECT_EQ(a.metrics, b.metrics);
    }
    EXPECT_EQ(diag_transcript(*cold), diag_transcript(*rec));
    EXPECT_EQ(interp_fingerprint(cold), interp_fingerprint(rec));
  }
}

// ---------------------------------------------------------------------------
// Parallel Sema determinism
// ---------------------------------------------------------------------------

TEST(ParallelSema, WorkerCountNeverChangesArtifactsOnTheApps) {
  for (const apps::AppSpec& spec : apps::all_apps()) {
    SCOPED_TRACE(spec.key);
    DriverOptions serial_opts;
    serial_opts.program_name = spec.key;
    DriverOptions par_opts = serial_opts;
    par_opts.sema_workers = 8;
    const CompilerDriver serial(serial_opts, &test_registry());
    const CompilerDriver parallel(par_opts, &test_registry());

    const CompilationPtr a = serial.run(spec.source, Stage::Layout);
    const CompilationPtr b = parallel.run(spec.source, Stage::Layout);
    ASSERT_TRUE(a->ok()) << a->diags().render();
    ASSERT_TRUE(b->ok()) << b->diags().render();
    EXPECT_EQ(diag_transcript(*a), diag_transcript(*b));
    const BackendArtifact pa = serial.emit(a, "p4");
    const BackendArtifact pb = parallel.emit(b, "p4");
    ASSERT_TRUE(pa.ok && pb.ok);
    EXPECT_EQ(pa.text, pb.text);
  }
}

TEST(ParallelSema, DiagnosticsAreDeterministicAcrossWorkerCounts) {
  // Errors in several decl bodies: the merged transcript must come out in
  // decl order regardless of which worker finishes first.
  const std::string bad =
      "const int K = 3;\n"
      "global a = new Array<<32>>(8);\n"
      "memop m(int cur, int x) { return cur + nope1; }\n"
      "event e0(int i);\nevent e1(int i);\nevent e2(int i);\n"
      "handle e0(int i) { int v = nope2; }\n"
      "handle e1(int i) { Array.set(a, i & 7, m, K); }\n"
      "handle e2(int i) { int w = nope3 + nope4; }\n";
  std::string reference;
  for (const int workers : {1, 2, 5, 8}) {
    SCOPED_TRACE(workers);
    DriverOptions opts;
    opts.sema_workers = workers;
    const CompilerDriver driver(opts, &test_registry());
    for (int rep = 0; rep < 3; ++rep) {
      const CompilationPtr c = driver.run(bad, Stage::Sema);
      EXPECT_FALSE(c->ok());
      if (reference.empty()) reference = diag_transcript(*c);
      EXPECT_EQ(diag_transcript(*c), reference);
      EXPECT_NE(reference.find("nope1"), std::string::npos);
      EXPECT_NE(reference.find("nope4"), std::string::npos);
      // decl order, not completion order: nope2 (e0) before nope3 (e2).
      EXPECT_LT(reference.find("nope2"), reference.find("nope3"));
    }
  }
}

}  // namespace
}  // namespace lucid
