// Golden-file tests for the code-generating emitters: the emitted artifact
// for every paper app (apps::all_apps()) is checked in under tests/golden/
// and diffed verbatim — Tofino-style P4_16 as <KEY>.p4 and the eBPF/XDP C
// program as <KEY>.c. Any intentional emitter change regenerates them with
//
//   UPDATE_GOLDEN=1 ./build/test_golden
//
// and the diff is reviewed like any other code change. See tests/README.md.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "core/backends.hpp"
#include "core/sweep.hpp"
#include "support/strings.hpp"

namespace lucid {
namespace {

/// One golden suite: a text-emitting backend plus its file extension and a
/// structural marker every artifact must contain.
struct GoldenSuite {
  std::string backend;
  std::string extension;
  std::string marker;  // sanity: a full program, not a truncated artifact
};

const std::vector<GoldenSuite>& golden_suites() {
  static const std::vector<GoldenSuite> suites = {
      {"p4", ".p4", "Switch(pipe) main;"},
      {"ebpf", ".c", "SEC(\"license\") char _license[] = \"GPL\";"},
  };
  return suites;
}

std::string golden_path(const std::string& key, const GoldenSuite& suite) {
  return std::string(LUCID_SOURCE_DIR) + "/tests/golden/" + key +
         suite.extension;
}

bool update_requested() {
  const char* env = std::getenv("UPDATE_GOLDEN");
  return env != nullptr && std::string(env) != "0" && std::string(env) != "";
}

std::string emit_app(const apps::AppSpec& spec, const std::string& backend) {
  BackendRegistry registry;
  register_default_backends(registry);
  DriverOptions opts;
  opts.program_name = spec.key;
  const CompilerDriver driver(opts, &registry);
  const CompilationPtr comp = driver.start(spec.source);
  const BackendArtifact artifact = driver.emit(comp, backend);
  EXPECT_TRUE(artifact.ok)
      << spec.key << " via " << backend << ":\n" << comp->diags().render();
  return artifact.text;
}

std::string read_file(const std::string& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ok = false;
    return {};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  ok = true;
  return ss.str();
}

/// Points at the first differing line, with context, so a golden failure is
/// actionable without an external diff tool.
std::string first_difference(const std::string& expected,
                             const std::string& actual) {
  const std::vector<std::string> e = split(expected, '\n');
  const std::vector<std::string> a = split(actual, '\n');
  const std::size_t n = std::max(e.size(), a.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::string el = i < e.size() ? e[i] : "<missing line>";
    const std::string al = i < a.size() ? a[i] : "<missing line>";
    if (el != al) {
      std::ostringstream os;
      os << "first difference at line " << (i + 1) << ":\n"
         << "  golden: " << el << "\n"
         << "  actual: " << al << "\n";
      return os.str();
    }
  }
  return "contents differ only in trailing bytes";
}

TEST(Golden, EmissionMatchesCheckedInGolden) {
  for (const GoldenSuite& suite : golden_suites()) {
    for (const apps::AppSpec& spec : apps::all_apps()) {
      SCOPED_TRACE(spec.key + suite.extension);
      const std::string actual = emit_app(spec, suite.backend);
      ASSERT_FALSE(actual.empty());

      const std::string path = golden_path(spec.key, suite);
      if (update_requested()) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << actual;
        continue;
      }

      bool read_ok = false;
      const std::string expected = read_file(path, read_ok);
      ASSERT_TRUE(read_ok) << "missing golden file " << path
                           << " — regenerate with UPDATE_GOLDEN=1";
      EXPECT_EQ(expected, actual)
          << first_difference(expected, actual)
          << "if the emitter change is intentional, regenerate with "
             "UPDATE_GOLDEN=1 ./test_golden";
    }
  }
}

// ---------------------------------------------------------------------------
// Layout pipelines (tests/golden/layout/<KEY>.txt)
//
// The optimizer's merged pipeline for every paper app, across the full
// stages=4,8,12,16 x salus=2,4 sweep grid, pinned as Pipeline::str() bytes.
// This is the drift guard for the two-phase layout engine: any change to the
// greedy merger that alters a placement shows up as a byte diff here, for
// every resource-model variant — not just the default Tofino model the
// emitter goldens exercise.
// ---------------------------------------------------------------------------

constexpr const char* kLayoutGoldenGrid = "stages=4,8,12,16;salus=2,4";

std::string layout_golden_path(const std::string& key) {
  return std::string(LUCID_SOURCE_DIR) + "/tests/golden/layout/" + key +
         ".txt";
}

/// Lays the app out against every grid variant and renders one labelled
/// transcript (variant header + Pipeline::str(), in grid order).
std::string layout_transcript(const apps::AppSpec& spec) {
  const auto variants = parse_sweep_grid(kLayoutGoldenGrid);
  EXPECT_TRUE(variants.has_value());
  std::string out;
  for (const SweepVariant& v : *variants) {
    DriverOptions opts;
    opts.model = v.model;
    opts.program_name = spec.key;
    const CompilerDriver driver(opts);
    const CompilationPtr comp = driver.run(spec.source, Stage::Layout);
    EXPECT_TRUE(comp->ok()) << spec.key << " @ " << v.label << ":\n"
                            << comp->diags().render();
    const opt::Pipeline& p = comp->pipeline();
    out += "=== " + v.label + " fits=" + (p.fits ? "yes" : "no") +
           " feasible=" + (p.feasible ? "yes" : "no") + " ===\n";
    out += p.str();
  }
  return out;
}

TEST(Golden, LayoutPipelinesMatchCheckedInGolden) {
  for (const apps::AppSpec& spec : apps::all_apps()) {
    SCOPED_TRACE(spec.key);
    const std::string actual = layout_transcript(spec);
    ASSERT_FALSE(actual.empty());

    const std::string path = layout_golden_path(spec.key);
    if (update_requested()) {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      ASSERT_TRUE(out.good()) << "cannot write " << path;
      out << actual;
      continue;
    }

    bool read_ok = false;
    const std::string expected = read_file(path, read_ok);
    ASSERT_TRUE(read_ok) << "missing golden file " << path
                         << " — regenerate with UPDATE_GOLDEN=1";
    EXPECT_EQ(expected, actual)
        << first_difference(expected, actual)
        << "if the layout change is intentional, regenerate with "
           "UPDATE_GOLDEN=1 ./test_golden";
  }
}

TEST(Golden, EmissionIsDeterministic) {
  // Golden files are only meaningful if emission is a pure function of the
  // compilation; two independent compiles must agree byte-for-byte.
  for (const GoldenSuite& suite : golden_suites()) {
    for (const apps::AppSpec& spec : apps::all_apps()) {
      SCOPED_TRACE(spec.key + suite.extension);
      EXPECT_EQ(emit_app(spec, suite.backend), emit_app(spec, suite.backend));
    }
  }
}

TEST(Golden, GoldenFilesCarryRealPrograms) {
  if (update_requested()) GTEST_SKIP() << "regeneration run";
  for (const GoldenSuite& suite : golden_suites()) {
    for (const apps::AppSpec& spec : apps::all_apps()) {
      SCOPED_TRACE(spec.key + suite.extension);
      bool read_ok = false;
      const std::string text =
          read_file(golden_path(spec.key, suite), read_ok);
      ASSERT_TRUE(read_ok) << "missing golden file for " << spec.key
                           << suite.extension;
      // Structural sanity: a full program, not a truncated artifact.
      EXPECT_NE(text.find(suite.marker), std::string::npos);
      EXPECT_GT(count_loc(text), 50u);
    }
  }
}

}  // namespace
}  // namespace lucid
