// eBPF/XDP backend tests: the verifier-friendliness checker's limit
// enforcement and diagnostics, the shape of the emitted XDP C, and the
// backend adapter's refuse-don't-emit contract.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "core/backends.hpp"
#include "ebpf/check.hpp"
#include "ebpf/emit.hpp"

namespace lucid {
namespace {

constexpr const char* kCounter =
    "global cnt = new Array<<32>>(16);\n"
    "memop plus(int cur, int x) { return cur + x; }\n"
    "event bump(int i);\n"
    "handle bump(int i) { Array.set(cnt, i & 15, plus, 1); }\n";

// A handler that re-generates its own event: cyclic recirculation.
constexpr const char* kAging =
    "global filt = new Array<<32>>(64);\n"
    "event age(int i);\n"
    "handle age(int i) { Array.set(filt, i & 63, 0); generate age(i + 1); }\n";

CompilationPtr compile(const char* source, BackendRegistry& registry) {
  const CompilerDriver driver({}, &registry);
  CompilationPtr comp = driver.run(source, Stage::Layout);
  EXPECT_TRUE(comp->ok()) << comp->diags().render();
  return comp;
}

BackendRegistry& default_registry() {
  static BackendRegistry registry = [] {
    BackendRegistry r;
    register_default_backends(r);
    return r;
  }();
  return registry;
}

// ---------------------------------------------------------------------------
// Checker
// ---------------------------------------------------------------------------

TEST(EbpfCheck, PaperAppsFitTheDefaultKernelModel) {
  for (const apps::AppSpec& spec : apps::all_apps()) {
    SCOPED_TRACE(spec.key);
    const CompilerDriver driver({}, &default_registry());
    const CompilationPtr comp = driver.run(spec.source, Stage::Layout);
    ASSERT_TRUE(comp->ok()) << comp->diags().render();

    DiagnosticEngine diags;
    const ebpf::CheckReport report =
        ebpf::check(comp->ir(), comp->pipeline(),
                    ebpf::EbpfLimits::kernel_default(), diags);
    EXPECT_TRUE(report.ok) << diags.render();
    EXPECT_FALSE(diags.has_errors()) << diags.render();
    EXPECT_GT(report.program_insns, 0);
    EXPECT_EQ(report.map_count,
              static_cast<int>(comp->ir().arrays.size()) + 1);
  }
}

TEST(EbpfCheck, HandlerInsnLimitRejectsWithDiagnostics) {
  const CompilationPtr comp = compile(kCounter, default_registry());
  ebpf::EbpfLimits tiny;
  tiny.insns_per_handler = 1;
  DiagnosticEngine diags;
  const ebpf::CheckReport report =
      ebpf::check(comp->ir(), comp->pipeline(), tiny, diags);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(diags.has_code("ebpf-handler-insns")) << diags.render();
}

TEST(EbpfCheck, ProgramInsnLimitRejectsWithDiagnostics) {
  const CompilationPtr comp = compile(kCounter, default_registry());
  ebpf::EbpfLimits tiny;
  tiny.insns_per_program = 1;
  DiagnosticEngine diags;
  EXPECT_FALSE(ebpf::check(comp->ir(), comp->pipeline(), tiny, diags).ok);
  EXPECT_TRUE(diags.has_code("ebpf-program-insns")) << diags.render();
}

TEST(EbpfCheck, MapCountAndBytesLimitsRejectWithDiagnostics) {
  const CompilationPtr comp = compile(kCounter, default_registry());
  {
    ebpf::EbpfLimits tiny;
    tiny.max_maps = 1;  // the prog array alone uses the budget
    DiagnosticEngine diags;
    EXPECT_FALSE(ebpf::check(comp->ir(), comp->pipeline(), tiny, diags).ok);
    EXPECT_TRUE(diags.has_code("ebpf-map-count")) << diags.render();
  }
  {
    ebpf::EbpfLimits tiny;
    tiny.max_map_bytes = 8;  // cnt preallocates 16 * 4 bytes
    DiagnosticEngine diags;
    const ebpf::CheckReport report =
        ebpf::check(comp->ir(), comp->pipeline(), tiny, diags);
    EXPECT_FALSE(report.ok);
    EXPECT_EQ(report.map_bytes, 64);
    EXPECT_TRUE(diags.has_code("ebpf-map-bytes")) << diags.render();
  }
}

TEST(EbpfCheck, NonScalarParamWidthsAreRejected) {
  // bit<48> occupies 6 bytes on the Tofino wire but would round up to a
  // __u64 in the packed XDP header — refuse rather than misparse.
  const char* src =
      "global a = new Array<<32>>(8);\n"
      "event e(int<<48>> mac);\n"
      "handle e(int<<48>> mac) { Array.set(a, 0, 1); }\n";
  const CompilationPtr comp = compile(src, default_registry());
  DiagnosticEngine diags;
  const ebpf::CheckReport report =
      ebpf::check(comp->ir(), comp->pipeline(),
                  ebpf::EbpfLimits::kernel_default(), diags);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(diags.has_code("ebpf-param-width")) << diags.render();
}

TEST(EbpfCheck, MidRangeCellWidthsAreRejected) {
  // 33..63-bit cells cannot wrap at 2^w in C arithmetic; reject rather than
  // silently diverge from the interpreter's arr->mask() semantics.
  const char* src =
      "global big = new Array<<48>>(4);\n"
      "event e(int i);\n"
      "handle e(int i) { Array.set(big, i & 3, 1); }\n";
  const CompilationPtr comp = compile(src, default_registry());
  DiagnosticEngine diags;
  EXPECT_FALSE(ebpf::check(comp->ir(), comp->pipeline(),
                           ebpf::EbpfLimits::kernel_default(), diags)
                   .ok);
  EXPECT_TRUE(diags.has_code("ebpf-cell-width")) << diags.render();
}

TEST(EbpfCheck, MultipleGenerateSitesWarnAboutSingleReinjection) {
  const char* src =
      "global a = new Array<<32>>(4);\n"
      "event e(int i);\n"
      "event f(int i);\n"
      "handle e(int i) { generate f(i); generate f(i + 1); }\n"
      "handle f(int i) { Array.set(a, i & 3, 1); }\n";
  const CompilationPtr comp = compile(src, default_registry());
  DiagnosticEngine diags;
  const ebpf::CheckReport report =
      ebpf::check(comp->ir(), comp->pipeline(),
                  ebpf::EbpfLimits::kernel_default(), diags);
  EXPECT_TRUE(report.ok) << diags.render();  // a warning, not an error
  EXPECT_TRUE(diags.has_code("ebpf-multi-generate")) << diags.render();
}

TEST(EbpfCheck, CyclicRecirculationWarnsButPasses) {
  const CompilationPtr comp = compile(kAging, default_registry());
  DiagnosticEngine diags;
  const ebpf::CheckReport report =
      ebpf::check(comp->ir(), comp->pipeline(),
                  ebpf::EbpfLimits::kernel_default(), diags);
  EXPECT_TRUE(report.ok) << diags.render();
  EXPECT_TRUE(report.recirc_cycle);
  EXPECT_FALSE(diags.has_errors());
  EXPECT_TRUE(diags.has_code("ebpf-recirc-cycle")) << diags.render();
}

TEST(EbpfCheck, TableCostsAreOrderedByConstructWeight) {
  // The cost model behind the instruction estimates: hashes (unrolled CRC)
  // dominate memops, which dominate plain ALU ops.
  ir::AtomicTable op;
  op.kind = ir::TableKind::Op;
  ir::AtomicTable mem;
  mem.kind = ir::TableKind::Mem;
  ir::AtomicTable hash;
  hash.kind = ir::TableKind::Hash;
  hash.hash.args = {ir::Operand::of_var("a"), ir::Operand::of_var("b")};
  EXPECT_LT(ebpf::table_insn_cost(op), ebpf::table_insn_cost(mem));
  EXPECT_LT(ebpf::table_insn_cost(mem), ebpf::table_insn_cost(hash));

  // Guards add cost: a guarded copy of a table always estimates higher.
  ir::AtomicTable guarded = op;
  guarded.guards = {{ir::MatchTest{"x", true, 1}}};
  EXPECT_GT(ebpf::table_insn_cost(guarded), ebpf::table_insn_cost(op));
}

// ---------------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------------

TEST(EbpfEmit, ProgramCarriesTheAdvertisedConstructs) {
  const CompilationPtr comp = compile(kAging, default_registry());
  const ebpf::XdpProgram p = ebpf::emit(*comp, "aging");
  // Register array -> BPF array map.
  EXPECT_NE(p.text.find("struct bpf_map_def SEC(\"maps\") reg_filt"),
            std::string::npos);
  EXPECT_NE(p.text.find("BPF_MAP_TYPE_ARRAY"), std::string::npos);
  // Memop -> bounded single-read/single-write map update.
  EXPECT_NE(p.text.find("bpf_map_lookup_elem(&reg_filt, &key)"),
            std::string::npos);
  EXPECT_NE(p.text.find("// single write"), std::string::npos);
  // generate -> staged serialization + one tail call back into the
  // pipeline, growing the packet first when the payload needs more room.
  EXPECT_NE(p.text.find("bpf_tail_call(ctx, &lucid_progs, LUCID_PROG_MAIN)"),
            std::string::npos);
  EXPECT_NE(p.text.find("bpf_xdp_adjust_tail(ctx, delta)"),
            std::string::npos);
  EXPECT_NE(p.text.find("int lucid_xdp_recirc(struct xdp_md *ctx)"),
            std::string::npos);
  // Bounds-checked parsing the verifier can discharge.
  EXPECT_NE(p.text.find("if ((void *)(ev + 1) > data_end)"),
            std::string::npos);
  // LoC metrics cover every category that appears.
  EXPECT_GT(p.total_loc(), 50u);
  EXPECT_GT(p.loc_by_category.at(ebpf::LineCategory::Map), 0u);
  EXPECT_GT(p.loc_by_category.at(ebpf::LineCategory::Handler), 0u);
}

TEST(EbpfEmit, SubWordCellsWrapLikeTheOtherBackends) {
  // A 16-bit array cell must wrap at 2^16 exactly as the P4 RegisterAction
  // (bit<16>) and the interpreter do, so memop write-backs are masked.
  const char* src =
      "global c = new Array<<16>>(4);\n"
      "memop plus(int cur, int x) { return cur + x; }\n"
      "event bump(int i);\n"
      "handle bump(int i) { Array.set(c, i & 3, plus, 1); }\n";
  const CompilerDriver driver({}, &default_registry());
  const CompilationPtr comp = driver.run(src, Stage::Layout);
  ASSERT_TRUE(comp->ok()) << comp->diags().render();
  const ebpf::XdpProgram p = ebpf::emit(*comp, "wrap");
  EXPECT_NE(p.text.find("& LUCID_MASK(16); // single write"),
            std::string::npos)
      << p.text;
}

TEST(EbpfEmit, HashLowersToInlineCrc32) {
  const apps::AppSpec& spec = apps::app("CM");  // sketch app: hash-heavy
  DriverOptions opts;
  opts.program_name = spec.key;
  const CompilerDriver driver(opts, &default_registry());
  const CompilationPtr comp = driver.run(spec.source, Stage::Layout);
  ASSERT_TRUE(comp->ok()) << comp->diags().render();
  const ebpf::XdpProgram p = ebpf::emit(*comp, spec.key);
  EXPECT_NE(p.text.find("lucid_crc32_word("), std::string::npos);
  EXPECT_NE(p.text.find("0xedb88320u"), std::string::npos);
}

TEST(EbpfEmit, WireFieldsAreNetworkByteOrder) {
  // The P4 target puts multi-byte fields on the wire big-endian; the XDP
  // program must convert on both parse and serialize or the two data planes
  // cannot exchange events.
  const CompilationPtr comp = compile(kAging, default_registry());
  const ebpf::XdpProgram p = ebpf::emit(*comp, "aging");
  EXPECT_NE(p.text.find("m.ev_id = lucid_ntohs(ev->event_id);"),
            std::string::npos);
  EXPECT_NE(p.text.find("lucid_ntohl(p->i)"), std::string::npos);
  EXPECT_NE(p.text.find("ev->event_id = lucid_htons("), std::string::npos);
  EXPECT_NE(p.text.find("ev->delay_ns = lucid_htonl("), std::string::npos);
}

// ---------------------------------------------------------------------------
// Backend adapter
// ---------------------------------------------------------------------------

TEST(EbpfBackend, EmitThroughTheRegistry) {
  const CompilerDriver driver({}, &default_registry());
  const CompilationPtr comp = driver.start(kCounter);
  const BackendArtifact artifact = driver.emit(comp, "ebpf");
  ASSERT_TRUE(artifact.ok) << comp->diags().render();
  EXPECT_NE(artifact.text.find("SEC(\"xdp\")"), std::string::npos);
  EXPECT_GT(artifact.metrics.at("loc_total"), 0);
  EXPECT_GT(artifact.metrics.at("est_insns"), 0);
  EXPECT_EQ(artifact.metrics.at("maps"), 2);  // reg_cnt + lucid_progs
  EXPECT_TRUE(comp->succeeded(Stage::Emit));
}

TEST(EbpfBackend, OverLimitProgramsFailWithDiagnosticsNotMalformedOutput) {
  // A registry whose "ebpf" backend models a tiny kernel: emission must
  // refuse with the checker's diagnostics and produce no text at all.
  BackendRegistry registry;
  ebpf::EbpfLimits tiny;
  tiny.insns_per_handler = 1;
  ASSERT_TRUE(ebpf::register_backend(registry, tiny));
  const CompilerDriver driver({}, &registry);
  const CompilationPtr comp = driver.start(kCounter);
  const BackendArtifact artifact = driver.emit(comp, "ebpf");
  EXPECT_FALSE(artifact.ok);
  EXPECT_TRUE(artifact.text.empty());
  EXPECT_TRUE(comp->diags().has_code("ebpf-handler-insns"))
      << comp->diags().render();
}

TEST(EbpfBackend, ArtifactIsByteIdenticalAcrossColdAndClonedCompiles) {
  for (const apps::AppSpec& spec : apps::all_apps()) {
    SCOPED_TRACE(spec.key);
    DriverOptions opts;
    opts.program_name = spec.key;
    const CompilerDriver driver(opts, &default_registry());
    const CompilationPtr cold = driver.run(spec.source, Stage::Layout);
    ASSERT_TRUE(cold->ok()) << cold->diags().render();
    const CompilationPtr clone = cold->clone_from_stage(Stage::Lower);
    ASSERT_NE(clone, nullptr);
    ASSERT_TRUE(driver.run_until(clone, Stage::Layout));
    const BackendArtifact a = driver.emit(cold, "ebpf");
    const BackendArtifact b = driver.emit(clone, "ebpf");
    ASSERT_TRUE(a.ok) << cold->diags().render();
    ASSERT_TRUE(b.ok) << clone->diags().render();
    EXPECT_EQ(a.text, b.text);
    EXPECT_EQ(a.metrics, b.metrics);
  }
}

}  // namespace
}  // namespace lucid
