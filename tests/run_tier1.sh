#!/usr/bin/env bash
# Tier-1 verification in one line: configure, build, and run every CTest-
# registered test. Run from anywhere; builds into <repo>/build.
#
#   ./tests/run_tier1.sh             # RelWithDebInfo (default)
#   ./tests/run_tier1.sh --werror    # Debug with -Werror (the CI preset)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build"
cmake_args=()
if [[ "${1:-}" == "--werror" ]]; then
  build="$repo/build-debug"
  cmake_args+=(-DCMAKE_BUILD_TYPE=Debug -DLUCID_WERROR=ON)
  shift
fi

cmake -B "$build" -S "$repo" "${cmake_args[@]}"
cmake --build "$build" -j"$(nproc)"
ctest --test-dir "$build" --output-on-failure -j"$(nproc)" "$@"
