// Interpreter semantics tests: array ops, memops, event generation,
// recursion via events, combinators, functions with array parameters,
// width masking, and the hash builtin.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "interp/testbed.hpp"
#include "support/bits.hpp"

namespace lucid::interp {
namespace {

TEST(Interp, CounterIncrements) {
  Testbed tb(
      "global cnt = new Array<<32>>(4);\n"
      "memop plus(int cur, int x) { return cur + x; }\n"
      "event bump(int i);\n"
      "handle bump(int i) { Array.set(cnt, i, plus, 1); }\n");
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  for (int i = 0; i < 5; ++i) tb.node(1).inject("bump", {2});
  tb.settle();
  EXPECT_EQ(tb.node(1).array("cnt")->get(2), 5);
  EXPECT_EQ(tb.node(1).stats().executions.at("bump"), 5u);
}

TEST(Interp, UpdateReturnsMemopOfOldValue) {
  Testbed tb(
      "global a = new Array<<32>>(2);\n"
      "global out = new Array<<32>>(2);\n"
      "memop mget(int cur, int x) { return cur; }\n"
      "memop plus(int cur, int x) { return cur + x; }\n"
      "event e(int i);\n"
      "handle e(int i) {\n"
      "  int old = Array.update(a, i, mget, 0, plus, 10);\n"
      "  Array.set(out, i, old);\n"
      "}\n");
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  tb.inject_and_run(1, "e", {0});
  EXPECT_EQ(tb.node(1).array("a")->get(0), 10);   // incremented
  EXPECT_EQ(tb.node(1).array("out")->get(0), 0);  // old value returned
  tb.inject_and_run(1, "e", {0});
  EXPECT_EQ(tb.node(1).array("a")->get(0), 20);
  EXPECT_EQ(tb.node(1).array("out")->get(0), 10);
}

TEST(Interp, ConditionalMemopBranches) {
  Testbed tb(
      "global m = new Array<<32>>(1);\n"
      "memop maxm(int cur, int x) {\n"
      "  if (cur < x) { return x; } else { return cur; }\n"
      "}\n"
      "event e(int v);\n"
      "handle e(int v) { Array.setm(m, 0, maxm, v); }\n");
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  tb.inject_and_run(1, "e", {5});
  tb.inject_and_run(1, "e", {3});
  tb.inject_and_run(1, "e", {9});
  EXPECT_EQ(tb.node(1).array("m")->get(0), 9);
}

TEST(Interp, RecursiveEventBoundedByCondition) {
  Testbed tb(
      "global steps = new Array<<32>>(1);\n"
      "memop plus(int cur, int x) { return cur + x; }\n"
      "event tick(int n);\n"
      "handle tick(int n) {\n"
      "  Array.set(steps, 0, plus, 1);\n"
      "  if (n > 1) { generate tick(n - 1); }\n"
      "}\n");
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  tb.inject_and_run(1, "tick", {10});
  EXPECT_EQ(tb.node(1).array("steps")->get(0), 10);
  // Nine self-generations, each one recirculation.
  EXPECT_EQ(tb.switch_at(1).recirculations(), 9u);
}

TEST(Interp, DelayCombinatorDefersExecution) {
  Testbed tb(
      "global t = new Array<<32>>(1);\n"
      "event fire(int x);\n"
      "event arm(int x);\n"
      "handle arm(int x) { generate Event.delay(fire(x), 2ms); }\n"
      "handle fire(int x) { Array.set(t, 0, Sys.time()); }\n");
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  tb.node(1).inject("arm", {1});
  tb.sim().run_until(5 * sim::kMs);
  const auto fired = tb.node(1).array("t")->get(0);
  EXPECT_GE(fired, 2 * sim::kMs);
  EXPECT_LE(fired, 2 * sim::kMs + 200 * sim::kUs);  // one release period
}

TEST(Interp, LocateSendsToPeer) {
  interp::TestbedConfig cfg;
  cfg.switch_ids = {1, 2};
  Testbed tb(
      "global got = new Array<<32>>(1);\n"
      "memop plus(int cur, int x) { return cur + x; }\n"
      "event ping(int from);\n"
      "event start(int dest);\n"
      "handle start(int dest) { generate Event.locate(ping(SELF), dest); }\n"
      "handle ping(int from) { Array.set(got, 0, plus, 1); }\n",
      cfg);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  tb.inject_and_run(1, "start", {2});
  EXPECT_EQ(tb.node(2).array("got")->get(0), 1);
  EXPECT_EQ(tb.node(1).array("got")->get(0), 0);
}

TEST(Interp, MulticastGroupReachesMembers) {
  interp::TestbedConfig cfg;
  cfg.switch_ids = {1, 2, 3};
  Testbed tb(
      "const group PEERS = {2, 3};\n"
      "global got = new Array<<32>>(1);\n"
      "memop plus(int cur, int x) { return cur + x; }\n"
      "event notify(int from);\n"
      "event start(int x);\n"
      "handle start(int x) {\n"
      "  mgenerate Event.locate(notify(SELF), PEERS);\n"
      "}\n"
      "handle notify(int from) { Array.set(got, 0, plus, 1); }\n",
      cfg);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  tb.inject_and_run(1, "start", {0});
  EXPECT_EQ(tb.node(2).array("got")->get(0), 1);
  EXPECT_EQ(tb.node(3).array("got")->get(0), 1);
  EXPECT_EQ(tb.node(1).array("got")->get(0), 0);
}

TEST(Interp, FunctionWithArrayParameterAliases) {
  Testbed tb(
      "global a = new Array<<32>>(2);\n"
      "global b = new Array<<32>>(2);\n"
      "memop plus(int cur, int x) { return cur + x; }\n"
      "fun void bump(Array<<32>> arr, int i) {\n"
      "  Array.set(arr, i, plus, 1);\n"
      "}\n"
      "event e(int i);\n"
      "handle e(int i) {\n"
      "  bump(a, i);\n"
      "  bump(b, i);\n"
      "}\n");
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  tb.inject_and_run(1, "e", {1});
  EXPECT_EQ(tb.node(1).array("a")->get(1), 1);
  EXPECT_EQ(tb.node(1).array("b")->get(1), 1);
}

TEST(Interp, FunctionReturnValue) {
  Testbed tb(
      "global vals = new Array<<32>>(4);\n"
      "global out = new Array<<32>>(4);\n"
      "fun int double_get(int i) {\n"
      "  int v = Array.get(vals, i);\n"
      "  return v + v;\n"
      "}\n"
      "event e(int i);\n"
      "handle e(int i) { Array.set(out, i, double_get(i)); }\n");
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  tb.node(1).array("vals")->set(2, 21);
  tb.inject_and_run(1, "e", {2});
  EXPECT_EQ(tb.node(1).array("out")->get(2), 42);
}

TEST(Interp, WidthMaskingOnNarrowArrays) {
  Testbed tb(
      "global narrow = new Array<<8>>(2);\n"
      "memop plus(int cur, int x) { return cur + x; }\n"
      "event e(int v);\n"
      "handle e(int v) { Array.set(narrow, 0, plus, v); }\n");
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  tb.inject_and_run(1, "e", {200});
  tb.inject_and_run(1, "e", {100});
  // 300 mod 256 = 44.
  EXPECT_EQ(tb.node(1).array("narrow")->get(0), 44);
}

TEST(Interp, EventValueSnapshotsAtBinding) {
  Testbed tb(
      "global out = new Array<<32>>(1);\n"
      "event sink(int v);\n"
      "event e(int x);\n"
      "handle e(int x) {\n"
      "  event pending = sink(x);\n"
      "  x = x + 100;\n"
      "  generate pending;\n"
      "}\n"
      "handle sink(int v) { Array.set(out, 0, v); }\n");
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  tb.inject_and_run(1, "e", {7});
  EXPECT_EQ(tb.node(1).array("out")->get(0), 7);
}

TEST(Interp, HashIsDeterministicAndSeedSensitive) {
  const auto h1 = hash32(1, {10, 20});
  const auto h2 = hash32(1, {10, 20});
  const auto h3 = hash32(2, {10, 20});
  const auto h4 = hash32(1, {20, 10});
  EXPECT_EQ(h1, h2);
  EXPECT_NE(h1, h3);
  EXPECT_NE(h1, h4);
}

TEST(Interp, GeneratedStatsTracked) {
  Testbed tb(
      "event a(int n);\n"
      "event b();\n"
      "handle a(int n) {\n"
      "  if (n > 0) { generate b(); }\n"
      "}\n"
      "handle b() { int x = 0; }\n");
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  tb.inject_and_run(1, "a", {1});
  tb.inject_and_run(1, "a", {0});
  EXPECT_EQ(tb.node(1).stats().generated.at("b"), 1u);
  EXPECT_EQ(tb.node(1).stats().executions.at("b"), 1u);
  EXPECT_EQ(tb.node(1).stats().executions.at("a"), 2u);
}

TEST(Interp, ShortCircuitLogicalOps) {
  Testbed tb(
      "global out1 = new Array<<32>>(1);\n"
      "global out2 = new Array<<32>>(1);\n"
      "event e(int a, int b);\n"
      "handle e(int a, int b) {\n"
      "  if (a == 1 && b == 2) { Array.set(out1, 0, 1); }\n"
      "  if (a == 9 || b == 2) { Array.set(out2, 0, 2); }\n"
      "}\n");
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  tb.inject_and_run(1, "e", {1, 2});
  EXPECT_EQ(tb.node(1).array("out1")->get(0), 1);
  EXPECT_EQ(tb.node(1).array("out2")->get(0), 2);
}

TEST(Interp, InjectUnknownEventIsRejected) {
  Testbed tb(
      "global cnt = new Array<<32>>(1);\n"
      "memop plus(int cur, int x) { return cur + x; }\n"
      "event bump(int i);\n"
      "handle bump(int i) { Array.set(cnt, 0, plus, 1); }\n");
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  EXPECT_FALSE(tb.node(1).inject("no_such_event", {1}));
  tb.settle();
  EXPECT_EQ(tb.node(1).stats().total_executions, 0u);
}

TEST(Interp, InjectArityMismatchIsRejected) {
  Testbed tb(
      "global cnt = new Array<<32>>(1);\n"
      "memop plus(int cur, int x) { return cur + x; }\n"
      "event bump(int i);\n"
      "handle bump(int i) { Array.set(cnt, 0, plus, 1); }\n");
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  EXPECT_FALSE(tb.node(1).inject("bump", {}));      // too few
  EXPECT_FALSE(tb.node(1).inject("bump", {1, 2}));  // too many
  tb.settle();
  EXPECT_EQ(tb.node(1).array("cnt")->get(0), 0);
  EXPECT_EQ(tb.node(1).stats().total_executions, 0u);
  EXPECT_TRUE(tb.node(1).inject("bump", {7}));  // exact arity still works
  tb.settle();
  EXPECT_EQ(tb.node(1).array("cnt")->get(0), 1);
}

TEST(Interp, InjectMasksArgsToDeclaredWidths) {
  Testbed tb(
      "global lo = new Array<<32>>(1);\n"
      "global hi = new Array<<32>>(1);\n"
      "event e(int<<8>> small, int big);\n"
      "handle e(int<<8>> small, int big) {\n"
      "  Array.set(lo, 0, small);\n"
      "  Array.set(hi, 0, big);\n"
      "}\n");
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  // 0x1ff exceeds 8 bits; the injected argument is masked like EventCtor
  // masks constructor arguments.
  ASSERT_TRUE(tb.node(1).inject("e", {0x1ff, 0x1ff}));
  tb.settle();
  EXPECT_EQ(tb.node(1).array("lo")->get(0), 0xff);
  EXPECT_EQ(tb.node(1).array("hi")->get(0), 0x1ff);
}

TEST(Interp, TraceHookObservesExecutions) {
  Testbed tb(
      "event a(int n);\n"
      "event b();\n"
      "handle a(int n) {\n"
      "  if (n > 0) { generate b(); }\n"
      "}\n"
      "handle b() { int x = 0; }\n");
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  std::vector<std::string> names;
  std::vector<std::vector<Value>> args;
  tb.node(1).set_trace([&](const std::string& ev, const pisa::Packet& p) {
    names.push_back(ev);
    args.push_back(p.args);
  });
  tb.inject_and_run(1, "a", {3});
  // The hook sees both the injected event and the generated one, in
  // execution order, with the executed argument values.
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
  ASSERT_EQ(args[0].size(), 1u);
  EXPECT_EQ(args[0][0], 3);
  EXPECT_TRUE(args[1].empty());

  // Detaching stops the stream.
  tb.node(1).set_trace(nullptr);
  tb.inject_and_run(1, "a", {1});
  EXPECT_EQ(names.size(), 2u);
}

// support::mask_width is the single modeled truncation shared by the
// interpreter and the native engine; pin its edge widths explicitly.
TEST(Interp, MaskWidthEdgeWidths) {
  using support::mask_width;

  // Width 1: a single bit survives.
  EXPECT_EQ(mask_width(0, 1), 0);
  EXPECT_EQ(mask_width(1, 1), 1);
  EXPECT_EQ(mask_width(2, 1), 0);
  EXPECT_EQ(mask_width(-1, 1), 1);

  // Width 63: everything but the sign bit. -1 is all ones, so masking off
  // bit 63 leaves the largest positive int64.
  EXPECT_EQ(mask_width(-1, 63), std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(mask_width(std::int64_t{1} << 62, 63), std::int64_t{1} << 62);
  EXPECT_EQ(mask_width(std::int64_t{1} << 63, 63), 0);

  // Width 64 is a passthrough: the value — sign and all — is untouched.
  // (Shifting a u64 by 64 would be UB; the passthrough is the contract.)
  EXPECT_EQ(mask_width(-1, 64), -1);
  EXPECT_EQ(mask_width(std::numeric_limits<std::int64_t>::min(), 64),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(mask_width(12345, 64), 12345);

  // Non-positive widths are also passthrough, negative values included.
  EXPECT_EQ(mask_width(-7, 0), -7);
  EXPECT_EQ(mask_width(-7, -4), -7);
  EXPECT_EQ(mask_width(std::numeric_limits<std::int64_t>::min(), -1),
            std::numeric_limits<std::int64_t>::min());

  // Widths above 64 behave like 64.
  EXPECT_EQ(mask_width(-42, 65), -42);

  // A negative value through a clipping width keeps only its low bits.
  EXPECT_EQ(mask_width(-1, 8), 255);
  EXPECT_EQ(mask_width(-256, 8), 0);
}

// The same edges observed end to end: a width-1 array behaves as one bit,
// and negative memop results store their truncation.
TEST(Interp, MaskWidthEdgesThroughArrays) {
  Testbed tb(
      "global bit = new Array<<1>>(2);\n"
      "global bytes = new Array<<8>>(1);\n"
      "memop plus(int cur, int x) { return cur + x; }\n"
      "event e(int v);\n"
      "handle e(int v) {\n"
      "  Array.set(bit, 0, plus, v);\n"
      "  Array.set(bytes, 0, plus, v);\n"
      "}\n");
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  tb.inject_and_run(1, "e", {3});
  EXPECT_EQ(tb.node(1).array("bit")->get(0), 1);    // 3 & 1
  EXPECT_EQ(tb.node(1).array("bytes")->get(0), 3);
  tb.inject_and_run(1, "e", {-4});
  // Injected args mask to the 32-bit param width first: -4 -> 0xFFFFFFFC.
  // bit: 1 + 0xFFFFFFFC stored mod 2 = 1; bytes: 3 + 0xFC = 0xFF mod 256.
  EXPECT_EQ(tb.node(1).array("bit")->get(0), 1);
  EXPECT_EQ(tb.node(1).array("bytes")->get(0), 0xFF);
}

}  // namespace
}  // namespace lucid::interp
