// Lexer unit tests: token kinds, time literals, comments, locations, and
// error recovery.
#include <gtest/gtest.h>

#include "frontend/lexer.hpp"

namespace lucid::frontend {
namespace {

std::vector<Token> lex(std::string_view src, DiagnosticEngine& diags) {
  Lexer lexer(src, diags);
  return lexer.lex_all();
}

std::vector<Token> lex_ok(std::string_view src) {
  DiagnosticEngine diags;
  auto toks = lex(src, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  return toks;
}

TEST(Lexer, EmptyInputYieldsEof) {
  const auto toks = lex_ok("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokenKind::Eof);
}

TEST(Lexer, Keywords) {
  const auto toks = lex_ok(
      "const global memop fun event handle group if else return "
      "generate mgenerate int bool void true false new");
  const TokenKind expected[] = {
      TokenKind::KwConst,  TokenKind::KwGlobal,   TokenKind::KwMemop,
      TokenKind::KwFun,    TokenKind::KwEvent,    TokenKind::KwHandle,
      TokenKind::KwGroup,  TokenKind::KwIf,       TokenKind::KwElse,
      TokenKind::KwReturn, TokenKind::KwGenerate, TokenKind::KwMGenerate,
      TokenKind::KwInt,    TokenKind::KwBool,     TokenKind::KwVoid,
      TokenKind::KwTrue,   TokenKind::KwFalse,    TokenKind::KwNew,
  };
  ASSERT_EQ(toks.size(), std::size(expected) + 1);
  for (std::size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(toks[i].kind, expected[i]) << "token " << i;
  }
}

TEST(Lexer, DecimalAndHexLiterals) {
  const auto toks = lex_ok("42 0xff 0");
  ASSERT_GE(toks.size(), 4u);
  EXPECT_EQ(toks[0].int_value, 42u);
  EXPECT_EQ(toks[1].int_value, 255u);
  EXPECT_EQ(toks[2].int_value, 0u);
}

TEST(Lexer, TimeLiteralsConvertToNanoseconds) {
  const auto toks = lex_ok("250ns 7us 10ms 2s");
  ASSERT_GE(toks.size(), 5u);
  EXPECT_EQ(toks[0].int_value, 250u);
  EXPECT_TRUE(toks[0].is_time);
  EXPECT_EQ(toks[1].int_value, 7'000u);
  EXPECT_EQ(toks[2].int_value, 10'000'000u);
  EXPECT_EQ(toks[3].int_value, 2'000'000'000u);
  EXPECT_TRUE(toks[3].is_time);
}

TEST(Lexer, BadSuffixIsAnError) {
  DiagnosticEngine diags;
  (void)lex("10xyz", diags);
  EXPECT_TRUE(diags.has_code("lex-bad-number-suffix"));
}

TEST(Lexer, OperatorsIncludingTwoCharacterOnes) {
  const auto toks = lex_ok("== != <= >= && || << >> < > = ! & |");
  const TokenKind expected[] = {
      TokenKind::EqEq, TokenKind::NotEq,    TokenKind::Le,
      TokenKind::Ge,   TokenKind::AmpAmp,   TokenKind::PipePipe,
      TokenKind::Shl,  TokenKind::Shr,      TokenKind::Lt,
      TokenKind::Gt,   TokenKind::Assign,   TokenKind::Bang,
      TokenKind::Amp,  TokenKind::Pipe,
  };
  ASSERT_EQ(toks.size(), std::size(expected) + 1);
  for (std::size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(toks[i].kind, expected[i]) << "token " << i;
  }
}

TEST(Lexer, LineAndBlockComments) {
  const auto toks = lex_ok("a // comment\nb /* multi\nline */ c");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[2].text, "c");
}

TEST(Lexer, UnterminatedBlockCommentIsAnError) {
  DiagnosticEngine diags;
  (void)lex("a /* never closed", diags);
  EXPECT_TRUE(diags.has_code("lex-unterminated-comment"));
}

TEST(Lexer, TracksLineAndColumn) {
  const auto toks = lex_ok("one\n  two");
  ASSERT_GE(toks.size(), 3u);
  EXPECT_EQ(toks[0].range.begin.line, 1u);
  EXPECT_EQ(toks[0].range.begin.col, 1u);
  EXPECT_EQ(toks[1].range.begin.line, 2u);
  EXPECT_EQ(toks[1].range.begin.col, 3u);
}

TEST(Lexer, UnknownCharacterRecovers) {
  DiagnosticEngine diags;
  const auto toks = lex("a ` b", diags);
  EXPECT_TRUE(diags.has_code("lex-bad-char"));
  // Both identifiers still lexed.
  ASSERT_GE(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
}

TEST(Lexer, IdentifiersWithUnderscoresAndDigits) {
  const auto toks = lex_ok("_x x1 snake_case_2");
  EXPECT_EQ(toks[0].text, "_x");
  EXPECT_EQ(toks[1].text, "x1");
  EXPECT_EQ(toks[2].text, "snake_case_2");
}

}  // namespace
}  // namespace lucid::frontend
