// Unit tests for the support library: diagnostics rendering and string
// utilities (including the LoC metric used by the Figure 9/10 benches).
#include <gtest/gtest.h>

#include "support/diagnostics.hpp"
#include "support/strings.hpp"

namespace lucid {
namespace {

TEST(Diagnostics, CollectsAndCountsErrors) {
  DiagnosticEngine diags;
  EXPECT_FALSE(diags.has_errors());
  diags.error(SrcRange{{1, 1}, {1, 2}}, "some-code", "something failed");
  diags.warning(SrcRange{{2, 1}, {2, 2}}, "warn-code", "be careful");
  EXPECT_TRUE(diags.has_errors());
  EXPECT_EQ(diags.error_count(), 1u);
  EXPECT_EQ(diags.all().size(), 2u);
  EXPECT_TRUE(diags.has_code("some-code"));
  EXPECT_TRUE(diags.has_code("warn-code"));
  EXPECT_FALSE(diags.has_code("other-code"));
}

TEST(Diagnostics, RendersSourceLineWithCaret) {
  DiagnosticEngine diags("first line\nsecond line\nthird line\n");
  diags.error(SrcRange{{2, 8}, {2, 12}}, "c", "bad token");
  const std::string out = diags.render();
  EXPECT_NE(out.find("second line"), std::string::npos);
  EXPECT_NE(out.find("2:8"), std::string::npos);
  // Caret under column 8.
  EXPECT_NE(out.find("       ^"), std::string::npos);
}

TEST(Diagnostics, ClearResetsState) {
  DiagnosticEngine diags;
  diags.error(SrcRange{}, "c", "m");
  diags.clear();
  EXPECT_FALSE(diags.has_errors());
  EXPECT_TRUE(diags.all().empty());
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, TrimRemovesWhitespace) {
  EXPECT_EQ(trim("  hello \t"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, ParsePositiveIntIsStrict) {
  EXPECT_EQ(parse_positive_int("4"), 4);
  EXPECT_EQ(parse_positive_int("512"), 512);
  EXPECT_FALSE(parse_positive_int("").has_value());
  EXPECT_FALSE(parse_positive_int("0").has_value());
  EXPECT_FALSE(parse_positive_int("-3").has_value());
  EXPECT_FALSE(parse_positive_int("4x").has_value());
  EXPECT_FALSE(parse_positive_int("1,6").has_value());
  EXPECT_FALSE(parse_positive_int("abc").has_value());
  EXPECT_FALSE(parse_positive_int("99999999999999999999").has_value());
}

TEST(Strings, JoinWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"one"}, ","), "one");
}

TEST(Strings, CountLocSkipsBlanksAndComments) {
  const std::string src =
      "// a comment\n"
      "\n"
      "int x = 1;\n"
      "   \t\n"
      "  // indented comment\n"
      "int y = 2;  // trailing comment counts\n";
  EXPECT_EQ(count_loc(src), 2u);
}

TEST(Strings, CountLocEmpty) { EXPECT_EQ(count_loc(""), 0u); }

TEST(Strings, IndentPadsNonEmptyLines) {
  EXPECT_EQ(indent("a\n\nb", 2), "  a\n\n  b");
}

TEST(SourceLocation, Formatting) {
  EXPECT_EQ(SrcLoc{}.str(), "<unknown>");
  EXPECT_EQ((SrcLoc{3, 7}).str(), "3:7");
  EXPECT_FALSE(SrcLoc{}.valid());
  EXPECT_TRUE((SrcLoc{1, 1}).valid());
}

}  // namespace
}  // namespace lucid
