// Event scheduler tests (section 3.2): dispatch of processable / delayed /
// non-local events, delay via the pausable queue vs the baseline
// recirculation (the Figure 14 comparison in miniature), and serialization
// of generated events.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "sched/scheduler.hpp"

namespace lucid::sched {
namespace {

struct Node {
  sim::Simulator sim;
  pisa::Switch sw;
  EventScheduler sched;

  explicit Node(SchedulerConfig cfg = {}, int id = 1)
      : sw(sim,
           [&] {
             pisa::SwitchConfig c;
             c.id = id;
             return c;
           }()),
        sched(sw, cfg) {}
};

TEST(Scheduler, ImmediateLocalEventExecutes) {
  Node n;
  std::vector<std::int64_t> seen;
  n.sched.set_execute([&](const pisa::Packet& p) {
    seen = p.args;
  });
  GenEvent ev;
  ev.event_id = 0;
  ev.args = {7, 8};
  n.sched.inject(ev);
  n.sim.run();
  EXPECT_EQ(seen, (std::vector<std::int64_t>{7, 8}));
  EXPECT_EQ(n.sched.stats().executed, 1u);
}

TEST(Scheduler, GeneratedLocalEventRecirculatesOnce) {
  Node n;
  int executions = 0;
  n.sched.set_execute([&](const pisa::Packet& p) {
    ++executions;
    if (p.event_id == 0) {
      GenEvent follow;
      follow.event_id = 1;
      n.sched.generate(follow);
    }
  });
  GenEvent first;
  first.event_id = 0;
  n.sched.inject(first);
  n.sim.run();
  EXPECT_EQ(executions, 2);
  EXPECT_EQ(n.sw.recirculations(), 1u);
}

TEST(Scheduler, DelayedEventWaitsInPausableQueue) {
  SchedulerConfig cfg;
  cfg.release_interval_ns = 100 * sim::kUs;
  cfg.release_window_ns = 5 * sim::kUs;
  Node n(cfg);
  sim::Time executed_at = -1;
  n.sched.set_execute([&](const pisa::Packet&) {
    executed_at = n.sim.now();
  });
  GenEvent ev;
  ev.event_id = 0;
  ev.delay_ns = 1 * sim::kMs;
  n.sched.inject(ev);
  n.sim.run_until(3 * sim::kMs);
  ASSERT_GT(executed_at, 0);
  // Executes at the first release at/after the due time; the quantization
  // error is below one release interval (Fig 14 right).
  EXPECT_GE(executed_at, 1 * sim::kMs);
  EXPECT_LE(executed_at - 1 * sim::kMs,
            cfg.release_interval_ns + cfg.release_window_ns);
  ASSERT_EQ(n.sched.stats().delay_samples.size(), 1u);
  EXPECT_EQ(n.sched.stats().delay_samples[0].first, 1 * sim::kMs);
}

TEST(Scheduler, BaselineDelaySpinsTheRecircPort) {
  SchedulerConfig cfg;
  cfg.mode = DelayMode::BaselineRecirculation;
  Node n(cfg);
  sim::Time executed_at = -1;
  n.sched.set_execute([&](const pisa::Packet&) {
    executed_at = n.sim.now();
  });
  GenEvent ev;
  ev.event_id = 0;
  ev.delay_ns = 100 * sim::kUs;
  n.sched.inject(ev);
  n.sim.run_until(sim::kMs);
  ASSERT_GT(executed_at, 0);
  // Error bounded by one recirculation loop (~600 ns), far tighter than the
  // queue — but look at the cost:
  EXPECT_LE(executed_at - 100 * sim::kUs, 1'000);
  // ~100us / ~606ns per loop => at least ~150 recirculations for ONE event.
  EXPECT_GE(n.sw.recirculations(), 140u);
}

TEST(Scheduler, PausableQueueUsesFarLessBandwidthThanBaseline) {
  // Fig 14 in miniature: 20 events delayed "indefinitely" for 2 ms.
  auto run_mode = [](DelayMode mode) -> double {
    SchedulerConfig cfg;
    cfg.mode = mode;
    Node n(cfg);
    n.sched.set_execute([](const pisa::Packet&) {});
    for (int i = 0; i < 20; ++i) {
      GenEvent ev;
      ev.event_id = 0;
      ev.delay_ns = 10 * sim::kSec;  // effectively forever
      n.sched.inject(ev);
    }
    const sim::Time horizon = 2 * sim::kMs;
    n.sim.run_until(horizon);
    const auto bytes = n.sw.recirc_stats().wire_bytes;
    return static_cast<double>(bytes) * 8.0 /
           static_cast<double>(horizon);  // Gb/s (bits per ns)
  };
  const double baseline = run_mode(DelayMode::BaselineRecirculation);
  const double queued = run_mode(DelayMode::PausableQueue);
  EXPECT_GT(baseline, 10.0);          // tens of Gb/s of spinning
  EXPECT_LT(queued, baseline / 5.0);  // the paper reports ~20x at 90 events
}

TEST(Scheduler, NonLocalEventForwardsThroughNetwork) {
  sim::Simulator sim;
  pisa::SwitchConfig c1;
  c1.id = 1;
  pisa::SwitchConfig c2;
  c2.id = 2;
  pisa::Switch sw1(sim, c1);
  pisa::Switch sw2(sim, c2);
  EventScheduler s1(sw1, {});
  EventScheduler s2(sw2, {});
  net::Network network(sim);
  network.add_node(s1);
  network.add_node(s2);
  network.connect(1, 2, sim::kUs);

  int executed_at_2 = 0;
  sim::Time when = -1;
  s1.set_execute([&](const pisa::Packet&) { FAIL() << "ran at wrong node"; });
  s2.set_execute([&](const pisa::Packet& p) {
    ++executed_at_2;
    when = sim.now();
    EXPECT_EQ(p.args.size(), 1u);
  });

  GenEvent ev;
  ev.event_id = 0;
  ev.args = {99};
  ev.location = 2;
  s1.inject(ev);
  sim.run();
  EXPECT_EQ(executed_at_2, 1);
  // One link hop (~1us) plus pipeline passes.
  EXPECT_GE(when, sim::kUs);
  EXPECT_EQ(s1.stats().forwarded, 1u);
}

TEST(Scheduler, MulticastReachesAllMembers) {
  sim::Simulator sim;
  std::vector<std::unique_ptr<pisa::Switch>> switches;
  std::vector<std::unique_ptr<EventScheduler>> scheds;
  net::Network network(sim);
  std::map<int, int> executions;
  for (int id = 1; id <= 3; ++id) {
    pisa::SwitchConfig c;
    c.id = id;
    switches.push_back(std::make_unique<pisa::Switch>(sim, c));
    scheds.push_back(std::make_unique<EventScheduler>(*switches.back(),
                                                      SchedulerConfig{}));
    network.add_node(*scheds.back());
  }
  for (int id = 1; id <= 3; ++id) {
    scheds[static_cast<std::size_t>(id - 1)]->set_execute(
        [&executions, id](const pisa::Packet&) { ++executions[id]; });
  }
  network.connect(1, 2);
  network.connect(1, 3);

  // Node 1 handler multicasts to {2, 3} when it executes event 0.
  scheds[0]->set_execute([&](const pisa::Packet& p) {
    ++executions[1];
    if (p.event_id == 0) {
      GenEvent ev;
      ev.event_id = 1;
      ev.multicast = true;
      ev.members = {2, 3};
      scheds[0]->generate(ev);
    }
  });

  GenEvent start;
  start.event_id = 0;
  scheds[0]->inject(start);
  sim.run();
  EXPECT_EQ(executions[1], 1);
  EXPECT_EQ(executions[2], 1);
  EXPECT_EQ(executions[3], 1);
  EXPECT_EQ(network.delivered(), 2u);
}

TEST(Scheduler, DelayedRemoteEventForwardsThenDelaysAtDestination) {
  // Event.delay(Event.locate(e, 2), d): per the dispatcher rules (section
  // 3.2), a non-local event forwards immediately; the delay is enforced by
  // the destination switch's delay queue.
  sim::Simulator sim;
  pisa::SwitchConfig c1;
  c1.id = 1;
  pisa::SwitchConfig c2;
  c2.id = 2;
  pisa::Switch sw1(sim, c1);
  pisa::Switch sw2(sim, c2);
  EventScheduler s1(sw1, {});
  EventScheduler s2(sw2, {});
  net::Network network(sim);
  network.add_node(s1);
  network.add_node(s2);
  network.connect(1, 2);

  sim::Time when = -1;
  s2.set_execute([&](const pisa::Packet&) { when = sim.now(); });
  s1.set_execute([](const pisa::Packet&) {});

  GenEvent ev;
  ev.event_id = 0;
  ev.location = 2;
  ev.delay_ns = 500 * sim::kUs;
  s1.inject(ev);
  sim.run_until(2 * sim::kMs);
  ASSERT_GT(when, 0);
  EXPECT_GE(when, 500 * sim::kUs);
}

TEST(Network, UnknownDestinationIsDropped) {
  Node n;
  net::Network network(n.sim);
  network.add_node(n.sched);
  GenEvent ev;
  ev.event_id = 0;
  ev.location = 99;
  n.sched.inject(ev);
  n.sim.run();
  EXPECT_EQ(network.dropped(), 1u);
}

}  // namespace
}  // namespace lucid::sched
