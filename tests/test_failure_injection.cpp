// Failure injection at the system level: dead neighbors, partitioned
// fabrics, table pressure, and adversarial event streams. These scenarios
// are where data-plane-integrated control earns its keep — the apps must
// degrade and recover without any controller.
#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "interp/testbed.hpp"

namespace lucid {
namespace {

using interp::Testbed;
using interp::TestbedConfig;
using interp::hash32;

// ---------------------------------------------------------------------------
// RR: a neighbor that stops answering probes is detected as dead.
// ---------------------------------------------------------------------------
TEST(FailureInjection, RerouterDetectsSilentNeighbor) {
  TestbedConfig cfg;
  cfg.switch_ids = {1, 2, 3};
  Testbed tb(apps::app("RR").source, cfg);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();

  // Probes run; both neighbors answer.
  tb.node(1).inject("probe_timer", {0});
  tb.settle(25 * sim::kMs);
  const auto ls2_before = tb.node(1).array("linkstate")->get(2);
  ASSERT_GT(ls2_before, 0);

  // Fail node 2: its scheduler stops executing handlers entirely (switch
  // power-off). Probe replies from node 2 cease; node 3 keeps answering.
  tb.node(2).node().set_execute([](const pisa::Packet&) {});
  tb.settle(80 * sim::kMs);

  const auto now = tb.sim().now();
  const auto ls2 = tb.node(1).array("linkstate")->get(2);
  const auto ls3 = tb.node(1).array("linkstate")->get(3);
  // Node 2's last reply is stale (> 50 ms), node 3's is fresh.
  EXPECT_GT(now - ls2, 50 * sim::kMs);
  EXPECT_LT(now - ls3, 50 * sim::kMs);
}

// ---------------------------------------------------------------------------
// SFW: a full cuckoo neighborhood triggers the bounded-failure path rather
// than looping forever.
// ---------------------------------------------------------------------------
TEST(FailureInjection, CuckooChainBoundsAndCountsFailures) {
  Testbed tb(apps::app("SFW").source);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  // Adversarially fill both banks with distinct foreign keys: every insert
  // displaces a new victim forever, so the MAX_DEPTH bound must fire.
  // (Distinct values matter — a uniform fill self-collides and terminates
  // the chain early.)
  for (std::int64_t i = 0; i < 1024; ++i) {
    tb.node(1).array("key1")->set(i, 1'000'000 + i);
    tb.node(1).array("key2")->set(i, 2'000'000 + i);
  }
  tb.inject_and_run(1, "pkt_out", {10, 20});
  EXPECT_GE(tb.node(1).array("failures")->get(0), 1);
  // The chain was bounded: at most MAX_DEPTH+1 cuckoo passes.
  EXPECT_LE(tb.switch_at(1).recirculations(), 12u);
}

// ---------------------------------------------------------------------------
// DFW: a partitioned peer misses sync updates; traffic through it is denied
// until connectivity (and a retransmitted install) comes back.
// ---------------------------------------------------------------------------
TEST(FailureInjection, PartitionedFirewallPeerDeniesThenRecovers) {
  TestbedConfig cfg;
  cfg.switch_ids = {1, 2, 3};
  Testbed tb(apps::app("DFW").source, cfg);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();

  // Partition node 3: drop everything it would execute.
  bool partitioned = true;
  auto* rt3 = &tb.node(3);
  // Reinstall an execute hook that gates on the partition flag. (The
  // runtime installed its own; emulate the partition at the scheduler
  // level instead by swallowing packets.)
  tb.sched_at(3).set_execute([&](const pisa::Packet&) {
    (void)rt3;
    if (partitioned) return;  // packets die at the dead switch
  });

  tb.inject_and_run(1, "pkt_out", {10, 20});
  // Peer 2 got the sync; peer 3 did not.
  tb.inject_and_run(2, "pkt_in", {20, 10});
  EXPECT_EQ(tb.node(2).array("allowed")->get(0), 1);
  tb.inject_and_run(3, "pkt_in", {20, 10});
  EXPECT_EQ(tb.node(3).array("denied")->get(0), 0)
      << "partitioned switch executes nothing at all";

  // Heal the partition: node 3 resumes normal execution, and the next
  // outbound packet re-syncs the flow.
  partitioned = false;
  interp::Runtime fresh(tb.compilation_ptr(), tb.sched_at(3));
  tb.inject_and_run(1, "pkt_out", {10, 20});
  tb.inject_and_run(3, "pkt_in", {20, 10});
  EXPECT_EQ(fresh.array("allowed")->get(0), 1);
}

// ---------------------------------------------------------------------------
// SRO: replicas converge even when syncs arrive out of order.
// ---------------------------------------------------------------------------
TEST(FailureInjection, SroOutOfOrderSyncsConverge) {
  TestbedConfig cfg;
  cfg.switch_ids = {1, 2, 3};
  Testbed tb(apps::app("SRO").source, cfg);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  // Deliver a burst of syncs for the same cell directly to replica 2 in
  // scrambled sequence order.
  tb.node(1).inject("sync", {1, 9, 300, 3}, 0, 2);
  tb.node(1).inject("sync", {1, 9, 100, 1}, 0, 2);
  tb.node(1).inject("sync", {1, 9, 500, 5}, 0, 2);
  tb.node(1).inject("sync", {1, 9, 200, 2}, 0, 2);
  tb.settle();
  // Highest sequence number wins regardless of arrival order.
  EXPECT_EQ(tb.node(2).array("vals")->get(9), 500);
  EXPECT_EQ(tb.node(2).array("seqs")->get(9), 5);
}

// ---------------------------------------------------------------------------
// NAT: port-space pressure wraps the allocator without corrupting earlier
// mappings beyond the wrapped slots.
// ---------------------------------------------------------------------------
TEST(FailureInjection, NatSurvivesAllocatorPressure) {
  Testbed tb(apps::app("NAT").source);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  sim::Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    tb.node(1).inject("pkt_out",
                      {rng.uniform(1, 1 << 20), rng.uniform(1, 60'000)});
  }
  tb.settle();
  EXPECT_EQ(tb.node(1).array("translated")->get(0), 200);
  // Every flow translates; ports are only burned for flows that won a
  // mapping slot (hash collisions in the 1024-slot table don't allocate).
  const auto ports = tb.node(1).array("next_port")->get(0);
  EXPECT_LE(ports, 200);
  EXPECT_GE(ports, 100);
}

// ---------------------------------------------------------------------------
// Scheduler: events to unknown destinations are dropped, not wedged.
// ---------------------------------------------------------------------------
TEST(FailureInjection, UnroutableEventsAreDroppedCleanly) {
  TestbedConfig cfg;
  cfg.switch_ids = {1};
  Testbed tb(
      "event ping(int x);\n"
      "handle ping(int x) {\n"
      "  generate Event.locate(ping(x), 42);\n"  // no such switch
      "}\n",
      cfg);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  tb.inject_and_run(1, "ping", {1});
  EXPECT_EQ(tb.network().dropped(), 1u);
  EXPECT_EQ(tb.node(1).stats().executions.at("ping"), 1u);
}

}  // namespace
}  // namespace lucid
