// Figure 12: optimized vs unoptimized stage count per application.
//
// Unoptimized = atomic tables on the longest code path of the unoptimized
// pipeline (one table per stage, no branch inlining / reordering / merging,
// handlers in disjoint stage ranges). Paper: ratios of 1.5-4x, larger for
// complex applications, and several apps simply don't fit unoptimized.
#include "bench_common.hpp"

int main() {
  using namespace lucid;
  bench::print_header("Figure 12",
                      "Optimized stage count vs unoptimized (ratio)");

  std::printf("%-10s | %11s | %9s | %6s | %13s\n", "App", "unoptimized",
              "optimized", "ratio", "fits unopt?");
  bench::print_rule();
  bench::JsonWriter j;
  j.obj_open().field("bench", "fig12_stage_ratio");
  j.arr_open("apps");
  double min_ratio = 1e9;
  double max_ratio = 0;
  for (const auto& spec : apps::all_apps()) {
    const CompilationPtr r = bench::compile_app(spec);
    const double ratio = r->layout_stats().stage_ratio();
    std::printf("%-10s | %11d | %9d | %5.1fx | %13s\n", spec.key.c_str(),
                r->layout_stats().unoptimized_stages, r->layout_stats().optimized_stages, ratio,
                r->layout_stats().unoptimized_stages > 12 ? "no (>12)" : "yes");
    j.obj_open()
        .field("app", spec.key)
        .field("unoptimized_stages", r->layout_stats().unoptimized_stages)
        .field("optimized_stages", r->layout_stats().optimized_stages)
        .field("ratio", ratio)
        .obj_close();
    min_ratio = std::min(min_ratio, ratio);
    max_ratio = std::max(max_ratio, ratio);
  }
  bench::print_rule();
  std::printf("ratio range: %.1fx - %.1fx  (paper: 1.5x - 4x, biggest gains "
              "on complex apps)\n",
              min_ratio, max_ratio);
  j.arr_close()
      .field("min_ratio", min_ratio)
      .field("max_ratio", max_ratio)
      .obj_close();
  j.save("BENCH_fig12_stage_ratio.json");
  return 0;
}
