// Incremental-recompile benchmark: what does the structural fingerprint +
// decl-level reuse pipeline buy on the IDE edit loop?
//
// For each of the ten paper apps, measure three ways of reacting to an edit
// (front end through Layout each time):
//
//   cold    CompilerDriver::run on the edited source — what every edit paid
//           before the incremental pipeline
//   hit     CompilerDriver::recompile after a whitespace/comment-only edit —
//           the structural hash matches, so nothing past Parse re-runs
//   edit    CompilerDriver::recompile after a one-handler edit — Sema/Lower
//           re-run only the dirty decl set, splicing the rest
//
// Both recompile paths must produce byte-identical p4 + ebpf artifacts to a
// cold compile of the same edited source (the bench aborts otherwise — it
// doubles as a differential test, and CI's perf-smoke job runs it as the
// incremental-vs-cold divergence gate). Results go to stdout and to
// machine-readable BENCH_incremental.json.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/backends.hpp"
#include "core/driver.hpp"
#include "support/chrono.hpp"

namespace {

using Clock = lucid::SteadyClock;
using lucid::ms_since;
using lucid::bench::print_header;
using lucid::bench::print_rule;

constexpr int kReps = 30;

struct AppRow {
  std::string key;
  double cold_ms = 0;   // kReps x cold compile of the edited source
  double hit_ms = 0;    // kReps x recompile of a formatting-only variant
  double edit_ms = 0;   // kReps x recompile of a one-handler edit
  // Sema+Lower stage wall (from the StageRecords) summed over the reps —
  // the per-decl reuse this bench isolates on the ten (small) paper apps.
  // Parse splicing and Phase A patching also run on the edit path; their
  // at-scale speedups are bench_frontend's gates (512-decl program).
  double cold_sl_ms = 0;
  double edit_sl_ms = 0;
  long sema_reused = 0;     // decls reused by Sema on the edit path
  long lower_spliced = 0;   // handler graphs spliced by Lower
  [[nodiscard]] double hit_speedup() const {
    return hit_ms > 0 ? cold_ms / hit_ms : 0.0;
  }
  [[nodiscard]] double edit_speedup() const {
    return edit_ms > 0 ? cold_ms / edit_ms : 0.0;
  }
  [[nodiscard]] double sl_speedup() const {
    return edit_sl_ms > 0 ? cold_sl_ms / edit_sl_ms : 0.0;
  }
};

// Escaping comes from the tree-wide JSON path (support/json.hpp via
// bench_common.hpp); only the pretty-printed layout is bespoke here.
using lucid::bench::json_escape;

void write_json(const std::vector<AppRow>& rows, const AppRow& totals,
                const char* path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "WARNING: cannot write %s\n", path);
    return;
  }
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  const auto row = [&os](const AppRow& r) {
    os << "    {\"app\": \"" << json_escape(r.key) << "\", "
       << "\"cold_ms\": " << r.cold_ms << ", "
       << "\"hit_ms\": " << r.hit_ms << ", "
       << "\"edit_ms\": " << r.edit_ms << ", "
       << "\"cold_sema_lower_ms\": " << r.cold_sl_ms << ", "
       << "\"edit_sema_lower_ms\": " << r.edit_sl_ms << ", "
       << "\"sema_reused\": " << r.sema_reused << ", "
       << "\"lower_spliced\": " << r.lower_spliced << ", "
       << "\"hit_speedup\": " << r.hit_speedup() << ", "
       << "\"edit_speedup\": " << r.edit_speedup() << "}";
  };
  os << "{\n"
     << "  \"bench\": \"bench_incremental\",\n"
     << "  \"reps\": " << kReps << ",\n"
     << "  \"apps\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    row(rows[i]);
    os << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  os << "  ],\n  \"totals\": ";
  row(totals);
  os << ",\n  \"speedup_hit_over_cold\": " << totals.hit_speedup()
     << ",\n  \"speedup_edit_over_cold\": " << totals.edit_speedup()
     << ",\n  \"speedup_edit_sema_lower\": " << totals.sl_speedup() << "\n"
     << "}\n";
  out << os.str();
  std::printf("\nwrote %s\n", path);
}

std::string ws_variant(const std::string& source) {
  return "// reformatted\n/* block comment */\n" + source +
         "\n// trailing comment\n";
}

std::string edit_first_handler(const std::string& source) {
  const std::size_t h = source.find("handle ");
  const std::size_t brace = h == std::string::npos
                                ? std::string::npos
                                : source.find('{', h);
  if (brace == std::string::npos) {
    std::fprintf(stderr, "FATAL: no handler to edit\n");
    std::exit(1);
  }
  std::string out = source;
  out.insert(brace + 1, " int __bench_edit = 1 + 2; ");
  return out;
}

/// Aborts unless recompile(prev, source) matches a cold compile of `source`
/// byte-for-byte on both code-generating backends.
void check_identical(const lucid::CompilerDriver& driver,
                     const lucid::CompilationPtr& prev,
                     const std::string& source, const char* what) {
  const lucid::CompilationPtr cold = driver.run(source, lucid::Stage::Layout);
  lucid::CompilationPtr rec = driver.recompile(prev, source);
  driver.run_until(rec, lucid::Stage::Layout);
  if (!cold->ok() || !rec->ok()) {
    std::fprintf(stderr, "FATAL: %s: compile failed\n", what);
    std::exit(1);
  }
  for (const char* backend : {"p4", "ebpf"}) {
    const lucid::BackendArtifact a = driver.emit(cold, backend);
    const lucid::BackendArtifact b = driver.emit(rec, backend);
    if (!a.ok || !b.ok || a.text != b.text) {
      std::fprintf(stderr,
                   "FATAL: %s/%s: incremental output diverged from cold\n",
                   what, backend);
      std::exit(1);
    }
  }
}

AppRow measure(const lucid::apps::AppSpec& spec) {
  AppRow r;
  r.key = spec.key;
  lucid::DriverOptions opts;
  opts.program_name = spec.key;
  const lucid::CompilerDriver driver(opts);

  const std::string hit_src = ws_variant(spec.source);
  const std::string edit_src = edit_first_handler(spec.source);

  const lucid::CompilationPtr prev = driver.run(spec.source,
                                                lucid::Stage::Layout);
  if (!prev->ok()) {
    std::fprintf(stderr, "FATAL: %s does not compile\n", spec.key.c_str());
    std::exit(1);
  }

  // Differential gate (CI fails here on any incremental-vs-cold drift).
  check_identical(driver, prev, hit_src, (spec.key + "/hit").c_str());
  check_identical(driver, prev, edit_src, (spec.key + "/edit").c_str());

  {  // record the reuse the edit path achieves
    lucid::CompilationPtr rec = driver.recompile(prev, edit_src);
    driver.run_until(rec, lucid::Stage::Layout);
    r.sema_reused = rec->record(lucid::Stage::Sema).decls_reused;
    r.lower_spliced = rec->record(lucid::Stage::Lower).decls_reused;
  }

  const auto t_cold = Clock::now();
  for (int rep = 0; rep < kReps; ++rep) {
    const lucid::CompilationPtr c = driver.run(edit_src, lucid::Stage::Layout);
    if (!c->ok()) std::exit(1);
    r.cold_sl_ms += c->record(lucid::Stage::Sema).wall_ms +
                    c->record(lucid::Stage::Lower).wall_ms;
  }
  r.cold_ms = ms_since(t_cold);

  const auto t_hit = Clock::now();
  for (int rep = 0; rep < kReps; ++rep) {
    lucid::CompilationPtr c = driver.recompile(prev, hit_src);
    driver.run_until(c, lucid::Stage::Layout);
    if (!c->ok()) std::exit(1);
  }
  r.hit_ms = ms_since(t_hit);

  const auto t_edit = Clock::now();
  for (int rep = 0; rep < kReps; ++rep) {
    lucid::CompilationPtr c = driver.recompile(prev, edit_src);
    driver.run_until(c, lucid::Stage::Layout);
    if (!c->ok()) std::exit(1);
    r.edit_sl_ms += c->record(lucid::Stage::Sema).wall_ms +
                    c->record(lucid::Stage::Lower).wall_ms;
  }
  r.edit_ms = ms_since(t_edit);
  return r;
}

}  // namespace

int main() {
  lucid::register_default_backends();

  // Warm up allocators and code paths so the first timed row is clean.
  (void)measure(lucid::apps::all_apps().front());

  print_header("bench_incremental",
               "edit-loop recompiles: cold vs structural hit vs one-decl "
               "edit (front end through Layout)");
  std::printf("%d reps per measurement\n\n", kReps);
  std::printf("%-8s %10s %10s %10s %9s %9s %7s %7s   %s\n", "app",
              "cold ms", "hit ms", "edit ms", "cold s+l", "edit s+l",
              "sema", "lower", "speedup (hit / edit / s+l)");

  std::vector<AppRow> rows;
  AppRow totals;
  totals.key = "total";
  for (const lucid::apps::AppSpec& spec : lucid::apps::all_apps()) {
    const AppRow r = measure(spec);
    totals.cold_ms += r.cold_ms;
    totals.hit_ms += r.hit_ms;
    totals.edit_ms += r.edit_ms;
    totals.cold_sl_ms += r.cold_sl_ms;
    totals.edit_sl_ms += r.edit_sl_ms;
    totals.sema_reused += r.sema_reused;
    totals.lower_spliced += r.lower_spliced;
    std::printf(
        "%-8s %10.2f %10.2f %10.2f %9.2f %9.2f %7ld %7ld   "
        "%.2fx / %.2fx / %.2fx\n",
        r.key.c_str(), r.cold_ms, r.hit_ms, r.edit_ms, r.cold_sl_ms,
        r.edit_sl_ms, r.sema_reused, r.lower_spliced, r.hit_speedup(),
        r.edit_speedup(), r.sl_speedup());
    rows.push_back(r);
  }
  print_rule();
  std::printf(
      "%-8s %10.2f %10.2f %10.2f %9.2f %9.2f %7ld %7ld   "
      "%.2fx / %.2fx / %.2fx\n",
      "total", totals.cold_ms, totals.hit_ms, totals.edit_ms,
      totals.cold_sl_ms, totals.edit_sl_ms, totals.sema_reused,
      totals.lower_spliced, totals.hit_speedup(), totals.edit_speedup(),
      totals.sl_speedup());
  std::printf(
      "\ncold = full compile per edit;  hit = formatting-only edit "
      "(structural hash match,\nend-to-end);  edit = one-handler edit "
      "(dirty decl set only);  s+l = the Sema+Lower\nstage wall the edit "
      "path makes incremental (incremental Parse and Layout Phase A\n"
      "are gated at scale by bench_frontend)\n");
  if (totals.hit_speedup() >= 2.0) {
    std::printf("structural-hit recompile beats cold by %.2fx (target: "
                "2x)\n",
                totals.hit_speedup());
  } else {
    std::printf("WARNING: structural-hit speedup %.2fx below the 2x "
                "target\n",
                totals.hit_speedup());
  }
  if (totals.sl_speedup() >= 1.2) {
    std::printf("edit-path Sema+Lower beats cold by %.2fx (target: 1.2x)\n",
                totals.sl_speedup());
  } else {
    std::printf("WARNING: edit-path Sema+Lower speedup %.2fx below the "
                "1.2x target\n",
                totals.sl_speedup());
  }
  write_json(rows, totals, "BENCH_incremental.json");
  return 0;
}
