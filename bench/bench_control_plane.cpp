// Runtime control plane: register-install throughput (batched vs unbatched)
// and packet-path disturbance under install churn.
//
// Three phases, each a hard assertion the CI perf-smoke job enforces:
//
//   1. Unbatched baseline: one register write per update message. The
//      modeled update path pays batch_overhead_ns per install.
//   2. Batched: 4096 writes per message amortize the overhead. The modeled
//      installs/sec must beat the unbatched baseline by >= 5x (it lands
//      around 140x with the default cost model). Wall-clock rates are
//      reported but only warned on — CI machines are too noisy for a hard
//      wall-clock ratio.
//   3. Churn: steady probe traffic with the control plane installing
//      ~1M entries/sec of virtual time in 1024-op batches. Applies happen
//      only at scheduler boundaries and each commit stalls the pipeline per
//      the cost model, so the p99 event latency must stay within 2x of the
//      no-churn baseline.
//
// The run as a whole must sustain >= 1M register installs, and the interp
// hot path must keep per-event inject+execute cost under a generous ceiling
// (the dense-id dispatch regression guard).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.hpp"
#include "ctrl/interp_bridge.hpp"
#include "interp/testbed.hpp"
#include "support/chrono.hpp"

namespace {

using namespace lucid;

constexpr const char* kProg =
    "global tbl = new Array<<32>>(65536);\n"
    "global cnt = new Array<<32>>(1);\n"
    "memop plus(int cur, int x) { return cur + x; }\n"
    "event ping(int i);\n"
    "handle ping(int i) { Array.set(cnt, 0, plus, 1); }\n";

constexpr std::size_t kTableCells = 65536;
constexpr std::size_t kUnbatchedInstalls = 100'000;
constexpr std::size_t kBatchedInstalls = 1'000'000;
constexpr std::size_t kBatchOps = 4096;

int failures = 0;

void check(bool ok, const char* what) {
  std::printf("  %-52s %s\n", what, ok ? "PASS" : "FAIL");
  if (!ok) ++failures;
}

ctrl::UpdateBatch make_batch(std::size_t start, std::size_t n) {
  ctrl::UpdateBatch b;
  b.writes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    b.writes.push_back(ctrl::RegWrite{
        "tbl", static_cast<std::int64_t>((start + i) % kTableCells),
        static_cast<ctrl::Value>(i)});
  }
  return b;
}

/// Installs `total` registers in batches of `per_batch` (1 == the unbatched
/// baseline) and returns the phase's stats snapshot.
ctrl::ControlPlaneStats install_phase(interp::Testbed& tb,
                                     ctrl::RuntimeControl& rc,
                                     std::size_t total,
                                     std::size_t per_batch) {
  rc.plane().reset_stats();
  std::size_t done = 0;
  while (done < total) {
    const std::size_t n = std::min(per_batch, total - done);
    rc.plane().submit(make_batch(done, n));
    done += n;
    // Keep the queue shallow: apply at the current boundary batch by batch.
    if (rc.plane().pending() >= 64) rc.plane().flush();
  }
  rc.plane().flush();
  tb.settle(sim::kUs);
  return rc.plane().snapshot();
}

double pct(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx =
      static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

struct ChurnResult {
  double p50_ns = 0;
  double p99_ns = 0;
  std::uint64_t events = 0;
  std::uint64_t installs = 0;
};

/// Runs 25k probe events over 50 ms of virtual time; when `churn` is set,
/// the control plane concurrently installs 1024-entry batches once per
/// millisecond (~1M installs/sec of virtual time) with the pipeline
/// occupancy model on.
ChurnResult churn_phase(bool churn) {
  interp::Testbed tb(kProg);
  if (!tb.ok()) {
    std::fprintf(stderr, "bench program failed to compile:\n%s\n",
                 tb.diagnostics().c_str());
    std::exit(1);
  }
  ctrl::RuntimeControl rc(tb.node(1));

  constexpr int kEvents = 25'000;
  constexpr sim::Time kGap = 2 * sim::kUs;
  std::vector<double> latency;
  latency.reserve(kEvents);
  tb.node(1).set_trace([&](const std::string& ev, const pisa::Packet& p) {
    if (ev == "ping") {
      latency.push_back(static_cast<double>(tb.sim().now() - p.created_ns));
    }
  });
  for (int i = 0; i < kEvents; ++i) {
    tb.sim().after(1 + i * kGap,
                   [&tb] { tb.node(1).inject("ping", {0}); });
  }
  if (churn) {
    for (int ms = 0; ms < 50; ++ms) {
      tb.sim().after(ms * sim::kMs + 7, [&rc, ms] {
        rc.plane().submit(
            make_batch(static_cast<std::size_t>(ms) * 1024, 1024));
      });
    }
  }
  tb.settle(kEvents * kGap + 10 * sim::kMs);
  rc.plane().flush();

  ChurnResult r;
  r.p50_ns = pct(latency, 0.50);
  r.p99_ns = pct(latency, 0.99);
  r.events = latency.size();
  r.installs = rc.plane().snapshot().writes_applied;
  return r;
}

/// Per-event inject+execute wall cost over 100k events — the dense-id
/// dispatch hot path. Returns ns per event.
double inject_cost_ns() {
  interp::Testbed tb(kProg);
  if (!tb.ok()) std::exit(1);
  constexpr int kWarm = 1'000;
  constexpr int kN = 100'000;
  for (int i = 0; i < kWarm; ++i) tb.node(1).inject("ping", {i});
  tb.settle();
  const auto t0 = SteadyClock::now();
  for (int i = 0; i < kN; ++i) tb.node(1).inject("ping", {i});
  tb.settle();
  const double ms = ms_since(t0);
  if (tb.node(1).stats().total_executions <
      static_cast<std::uint64_t>(kWarm + kN)) {
    std::fprintf(stderr, "FATAL: inject-cost phase dropped events\n");
    std::exit(1);
  }
  return ms * 1e6 / kN;
}

}  // namespace

int main() {
  bench::print_header(
      "Control plane",
      "batched install throughput and packet-path disturbance");

  interp::Testbed tb(kProg);
  if (!tb.ok()) {
    std::fprintf(stderr, "bench program failed to compile:\n%s\n",
                 tb.diagnostics().c_str());
    return 1;
  }
  ctrl::RuntimeControl rc(tb.node(1));

  const ctrl::ControlPlaneStats unbatched =
      install_phase(tb, rc, kUnbatchedInstalls, 1);
  const ctrl::ControlPlaneStats batched =
      install_phase(tb, rc, kBatchedInstalls, kBatchOps);

  std::printf("install throughput (modeled update path / wall clock):\n");
  std::printf("  unbatched: %9zu installs  %12.0f /s modeled  %12.0f /s wall\n",
              kUnbatchedInstalls, unbatched.modeled_installs_per_sec,
              unbatched.wall_installs_per_sec);
  std::printf("  batched  : %9zu installs  %12.0f /s modeled  %12.0f /s wall"
              "  (%zu writes/batch)\n",
              kBatchedInstalls, batched.modeled_installs_per_sec,
              batched.wall_installs_per_sec, kBatchOps);
  const double modeled_ratio =
      batched.modeled_installs_per_sec /
      std::max(unbatched.modeled_installs_per_sec, 1.0);
  const double wall_ratio = batched.wall_installs_per_sec /
                            std::max(unbatched.wall_installs_per_sec, 1.0);
  std::printf("  batching speedup: %.1fx modeled, %.1fx wall\n",
              modeled_ratio, wall_ratio);
  if (wall_ratio < 5.0) {
    std::printf("  WARN: wall-clock batching speedup below 5x "
                "(noisy machines only warn)\n");
  }

  const ChurnResult quiet = churn_phase(false);
  const ChurnResult noisy = churn_phase(true);
  std::printf("\npacket-path disturbance (%llu probe events, 50 ms):\n",
              static_cast<unsigned long long>(quiet.events));
  std::printf("  no churn : p50 %6.0f ns   p99 %6.0f ns\n", quiet.p50_ns,
              quiet.p99_ns);
  std::printf("  churn    : p50 %6.0f ns   p99 %6.0f ns   "
              "(%llu installs during run)\n",
              noisy.p50_ns, noisy.p99_ns,
              static_cast<unsigned long long>(noisy.installs));

  const double inject_ns = inject_cost_ns();
  std::printf("\ninterp hot path: %.0f ns per inject+execute\n", inject_ns);

  const std::uint64_t total_installs =
      unbatched.writes_applied + batched.writes_applied + noisy.installs;
  std::printf("\nassertions:\n");
  check(total_installs >= 1'000'000, ">= 1M register installs across run");
  check(modeled_ratio >= 5.0, "batched modeled installs/sec >= 5x unbatched");
  check(noisy.p99_ns <= 2.0 * quiet.p99_ns,
        "p99 event latency under churn within 2x baseline");
  check(inject_ns < 10'000.0, "inject+execute under 10 us/event");

  bench::JsonWriter j;
  j.obj_open()
      .field("bench", "bench_control_plane")
      .field("total_installs", total_installs)
      .obj_open("unbatched")
      .field("installs", unbatched.writes_applied)
      .field("modeled_installs_per_sec", unbatched.modeled_installs_per_sec)
      .field("wall_installs_per_sec", unbatched.wall_installs_per_sec)
      .field("update_path_busy_ns", unbatched.update_path_busy_ns)
      .obj_close()
      .obj_open("batched")
      .field("installs", batched.writes_applied)
      .field("writes_per_batch", kBatchOps)
      .field("modeled_installs_per_sec", batched.modeled_installs_per_sec)
      .field("wall_installs_per_sec", batched.wall_installs_per_sec)
      .field("update_path_busy_ns", batched.update_path_busy_ns)
      .obj_close()
      .field("modeled_speedup", modeled_ratio)
      .field("wall_speedup", wall_ratio)
      .obj_open("churn")
      .field("events", quiet.events)
      .field("baseline_p50_ns", quiet.p50_ns)
      .field("baseline_p99_ns", quiet.p99_ns)
      .field("churn_p50_ns", noisy.p50_ns)
      .field("churn_p99_ns", noisy.p99_ns)
      .field("installs_during_run", noisy.installs)
      .obj_close()
      .field("inject_ns_per_event", inject_ns)
      .field("failures", failures)
      .obj_close();
  j.save("BENCH_control_plane.json");

  return failures == 0 ? 0 : 1;
}
