// Native engine speedup: the JIT-compiled execution engine (src/native) vs
// the reference AST-walking interpreter, on the ten paper applications.
//
// Methodology: for each app, build one randomized schedule (the same
// differential harness the test suite uses — timer events seeded once,
// traffic round-robin with ~1 us spacing), then run it through both engines
// several times and keep each engine's best wall time. Throughput is
// pipeline passes per second of wall time. The speedup only counts if the
// runs are indistinguishable, so every row re-checks the differential-state
// contract: byte-identical register state plus every shared counter.
//
// A second column measures the module's raw batch entry point
// (lucid_native_run_batch) on a synthetic packet vector — the ceiling once
// the event-loop bookkeeping is amortized away.
//
// Exit status is the acceptance gate: non-zero unless every app holds the
// state contract AND runs >= 10x faster than the interpreter.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "bench/bench_common.hpp"
#include "native/differential.hpp"

namespace {

using namespace lucid;

constexpr int kTrafficEvents = 2000;
constexpr int kReps = 3;
constexpr double kRequiredSpeedup = 10.0;

struct AppRow {
  std::string key;
  bool state_identical = false;
  std::string detail;
  std::uint64_t passes = 0;  // pipeline passes executed (identical per rep)
  double interp_s = 0.0;     // best of kReps
  double native_s = 0.0;     // best of kReps
  double interp_pps = 0.0;
  double native_pps = 0.0;
  double speedup = 0.0;
  double batch_pps = 0.0;    // raw run_batch, no event loop
  double compile_ms = 0.0;
};

/// Raw module throughput: a 64k synthetic packet vector (round-robin over
/// handled events, randomized args) pumped through run_batch against a
/// scratch register file until ~100 ms has elapsed.
double measure_batch_pps(const native::Program& prog, std::uint64_t seed) {
  const ir::ProgramIR& ir = prog.ir();
  std::vector<const ir::EventInfo*> handled;
  for (const auto& ev : ir.events) {
    if (ev.has_handler) handled.push_back(&ev);
  }
  if (handled.empty()) return 0.0;

  std::vector<std::vector<std::int64_t>> cells;
  std::vector<std::int64_t*> ptrs;
  for (const auto& arr : ir.arrays) {
    cells.emplace_back(static_cast<std::size_t>(arr.size), 0);
  }
  for (auto& c : cells) ptrs.push_back(c.data());

  constexpr std::int32_t kBatch = 1 << 16;
  std::uint64_t rng = seed;
  std::vector<native::PacketIn> packets(kBatch);
  for (std::int32_t i = 0; i < kBatch; ++i) {
    const ir::EventInfo* ev =
        handled[static_cast<std::size_t>(i) % handled.size()];
    native::PacketIn& in = packets[static_cast<std::size_t>(i)];
    in.event_id = ev->event_id;
    in.nargs = static_cast<std::int32_t>(ev->params.size());
    in.now_ns = 1000 + i;
    in.self_id = 1;
    for (std::int32_t a = 0; a < in.nargs; ++a) {
      in.args[a] =
          static_cast<std::int64_t>(native::diff::splitmix64(rng) % 100000);
    }
  }
  const auto gens =
      std::max<std::int32_t>(prog.module().max_gens(), 1);
  std::vector<native::GenOut> out(static_cast<std::size_t>(kBatch) *
                                  static_cast<std::size_t>(gens));
  std::vector<std::int32_t> counts(static_cast<std::size_t>(kBatch));

  std::uint64_t total = 0;
  const auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  do {
    prog.module().run_batch(ptrs.data(), packets.data(), kBatch, out.data(),
                            counts.data());
    total += static_cast<std::uint64_t>(kBatch);
    elapsed = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  } while (elapsed < 0.1);
  return static_cast<double>(total) / elapsed;
}

AppRow run_app(const apps::AppSpec& spec, std::uint64_t seed) {
  AppRow row;
  row.key = spec.key;

  interp::TestbedConfig probe_cfg;
  probe_cfg.program_name = spec.key;
  interp::Testbed probe(spec.source, probe_cfg);
  if (!probe.ok()) {
    row.detail = "compile failed: " + probe.diagnostics();
    return row;
  }
  const auto sched = native::diff::make_schedule(probe.compilation().ir(),
                                                 seed, kTrafficEvents);

  std::string err;
  const auto prog =
      native::Program::build(probe.compilation_ptr(), &err);
  if (prog == nullptr) {
    row.detail = "native build failed: " + err;
    return row;
  }
  row.compile_ms = prog->module().compile_ms();

  // Both engines are deterministic, so reps only tighten the timing — the
  // state compared below is the same on every rep.
  native::diff::EngineResult iref;
  native::diff::EngineResult nref;
  for (int rep = 0; rep < kReps; ++rep) {
    auto i = native::diff::run_interp(spec.source, spec.key, sched);
    auto n = native::diff::run_native(prog, sched);
    if (!i.ok || !n.ok) {
      row.detail = !i.ok ? i.error : n.error;
      return row;
    }
    if (rep == 0 || i.wall_s < iref.wall_s) iref = std::move(i);
    if (rep == 0 || n.wall_s < nref.wall_s) nref = std::move(n);
  }

  row.detail = native::diff::compare(prog->ir(), iref, nref);
  row.state_identical = row.detail.empty();
  row.passes = iref.executed;
  row.interp_s = iref.wall_s;
  row.native_s = nref.wall_s;
  if (row.interp_s > 0) {
    row.interp_pps = static_cast<double>(row.passes) / row.interp_s;
  }
  if (row.native_s > 0) {
    row.native_pps = static_cast<double>(row.passes) / row.native_s;
  }
  if (row.native_s > 0) row.speedup = row.interp_s / row.native_s;
  row.batch_pps = measure_batch_pps(*prog, seed * 31 + 7);
  return row;
}

}  // namespace

int main() {
  bench::print_header(
      "Native engine",
      "JIT-compiled pipeline vs reference interpreter, ten paper apps "
      "(differential-state contract enforced per row)");

  std::vector<AppRow> rows;
  std::uint64_t seed = 0xBE11C0DE;
  for (const auto& spec : apps::all_apps()) {
    rows.push_back(run_app(spec, seed++));
  }

  std::printf("  %-8s | %9s | %11s | %11s | %7s | %12s | %5s\n", "app",
              "passes", "interp pps", "native pps", "speedup", "batch pps",
              "state");
  bench::print_rule();
  bool all_ok = true;
  double min_speedup = 0.0;
  double log_sum = 0.0;
  std::size_t timed = 0;
  for (const auto& r : rows) {
    std::printf("  %-8s | %9llu | %11.0f | %11.0f | %6.1fx | %12.0f | %s\n",
                r.key.c_str(),
                static_cast<unsigned long long>(r.passes), r.interp_pps,
                r.native_pps, r.speedup, r.batch_pps,
                r.state_identical ? "ok" : "DIFF");
    if (!r.state_identical) {
      std::printf("    !! %s\n", r.detail.c_str());
      all_ok = false;
    }
    if (r.speedup < kRequiredSpeedup) all_ok = false;
    if (timed == 0 || r.speedup < min_speedup) min_speedup = r.speedup;
    if (r.speedup > 0) {
      log_sum += std::log(r.speedup);
      ++timed;
    }
  }
  const double geomean =
      timed > 0 ? std::exp(log_sum / static_cast<double>(timed)) : 0.0;
  bench::print_rule();
  std::printf("  min speedup %.1fx, geomean %.1fx (gate: every app >= "
              "%.0fx with byte-identical state)\n",
              min_speedup, geomean, kRequiredSpeedup);

  bench::JsonWriter j;
  j.obj_open()
      .field("bench", "bench_native")
      .field("traffic_events", kTrafficEvents)
      .field("reps", kReps)
      .field("required_speedup", kRequiredSpeedup);
  j.arr_open("apps");
  for (const auto& r : rows) {
    j.obj_open()
        .field("key", r.key)
        .field("state_identical", r.state_identical)
        .field("passes", r.passes)
        .field("interp_s", r.interp_s)
        .field("native_s", r.native_s)
        .field("interp_pps", r.interp_pps)
        .field("native_pps", r.native_pps)
        .field("speedup", r.speedup)
        .field("batch_pps", r.batch_pps)
        .field("compile_ms", r.compile_ms)
        .obj_close();
  }
  j.arr_close();
  j.field("min_speedup", min_speedup)
      .field("geomean_speedup", geomean)
      .field("gate_passed", all_ok)
      .obj_close();
  j.save("BENCH_native.json");

  if (!all_ok) {
    std::fprintf(stderr,
                 "FAIL: native engine gate not met (state contract or "
                 "%.0fx floor)\n",
                 kRequiredSpeedup);
    return 1;
  }
  return 0;
}
