// Front-end scaling benchmark: what do the incremental parser, the patched
// layout analysis, and the parallel Sema body checks buy on a large program?
//
// On a deterministic synthetic program (frontend::generate_program, >= 500
// top-level decls) it measures:
//
//   parse    cold Parse of a one-handler edit vs CompilerDriver::recompile's
//            incremental parse (re-lex/re-parse only the edited decl span,
//            splice the rest by pointer)            — target >= 5x
//   phase A  cold opt::analyze_layout vs opt::update_layout_analysis with
//            exactly one dirty handler              — target >= 3x
//   sema     serial Sema vs --sema-workers=8 (per-decl body checks on the
//            shared worker pool)                    — target >= 2x
//
// The incremental paths must stay identical to cold compiles (the bench
// aborts on any IR/pipeline/diagnostics divergence, and asserts serial and
// parallel Sema render identical transcripts). Results go to stdout and
// machine-readable BENCH_frontend.json; CI's perf-smoke job runs this as
// the front-end scaling gate.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>

#include "bench/bench_common.hpp"
#include "core/backends.hpp"
#include "core/driver.hpp"
#include "frontend/progen.hpp"
#include "opt/passes.hpp"
#include "support/chrono.hpp"

namespace {

using Clock = lucid::SteadyClock;
using lucid::ms_since;
using lucid::bench::print_header;
using lucid::bench::print_rule;

constexpr int kParseReps = 20;
constexpr int kPhaseAReps = 10;
constexpr int kSemaReps = 10;
constexpr int kSemaWorkers = 8;

struct Results {
  int decls = 0;
  int handlers = 0;
  unsigned hardware_threads = 0;
  double parse_cold_ms = 0;
  double parse_edit_ms = 0;
  long parse_reused = 0;
  double phasea_cold_ms = 0;
  double phasea_inc_ms = 0;
  long handlers_reused = 0;
  double sema_serial_ms = 0;
  double sema_parallel_ms = 0;
  [[nodiscard]] double parse_speedup() const {
    return parse_edit_ms > 0 ? parse_cold_ms / parse_edit_ms : 0.0;
  }
  [[nodiscard]] double phasea_speedup() const {
    return phasea_inc_ms > 0 ? phasea_cold_ms / phasea_inc_ms : 0.0;
  }
  [[nodiscard]] double sema_speedup() const {
    return sema_parallel_ms > 0 ? sema_serial_ms / sema_parallel_ms : 0.0;
  }
};

void write_json(const Results& r, const char* path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "WARNING: cannot write %s\n", path);
    return;
  }
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "{\n"
     << "  \"bench\": \"bench_frontend\",\n"
     << "  \"decls\": " << r.decls << ",\n"
     << "  \"handlers\": " << r.handlers << ",\n"
     << "  \"sema_workers\": " << kSemaWorkers << ",\n"
     << "  \"hardware_threads\": " << r.hardware_threads << ",\n"
     << "  \"parse_cold_ms\": " << r.parse_cold_ms << ",\n"
     << "  \"parse_edit_ms\": " << r.parse_edit_ms << ",\n"
     << "  \"parse_decls_reused\": " << r.parse_reused << ",\n"
     << "  \"parse_speedup\": " << r.parse_speedup() << ",\n"
     << "  \"phasea_cold_ms\": " << r.phasea_cold_ms << ",\n"
     << "  \"phasea_incremental_ms\": " << r.phasea_inc_ms << ",\n"
     << "  \"phasea_handlers_reused\": " << r.handlers_reused << ",\n"
     << "  \"phasea_speedup\": " << r.phasea_speedup() << ",\n"
     << "  \"sema_serial_ms\": " << r.sema_serial_ms << ",\n"
     << "  \"sema_parallel_ms\": " << r.sema_parallel_ms << ",\n"
     << "  \"sema_speedup\": " << r.sema_speedup() << "\n"
     << "}\n";
  out << os.str();
  std::printf("\nwrote %s\n", path);
}

/// Aborts unless recompile(prev, source) matches a cold compile of `source`
/// on the lowered IR, the laid-out pipeline, and the rendered diagnostics.
/// (A 500-decl program cannot fit a 12-stage model, so the byte-identity
/// gate on emitted p4/ebpf/interp artifacts lives in the tests, which use
/// the ten paper apps and small fitting generated programs.)
void check_identical(const lucid::CompilerDriver& driver,
                     const lucid::CompilationPtr& prev,
                     const std::string& source, const char* what) {
  const lucid::CompilationPtr cold = driver.run(source, lucid::Stage::Layout);
  lucid::CompilationPtr rec = driver.recompile(prev, source);
  driver.run_until(rec, lucid::Stage::Layout);
  if (!cold->ok() || !rec->ok()) {
    std::fprintf(stderr, "FATAL: %s: compile failed\n", what);
    std::exit(1);
  }
  std::string cold_ir, rec_ir;
  for (const auto& h : cold->ir().handlers) cold_ir += h.str();
  for (const auto& h : rec->ir().handlers) rec_ir += h.str();
  if (cold_ir != rec_ir ||
      cold->pipeline().str() != rec->pipeline().str() ||
      cold->diags().render() != rec->diags().render()) {
    std::fprintf(stderr,
                 "FATAL: %s: incremental IR/pipeline/diagnostics diverged "
                 "from cold\n",
                 what);
    std::exit(1);
  }
}

}  // namespace

int main() {
  lucid::register_default_backends();

  lucid::frontend::ProgenConfig cfg;
  cfg.handlers = 240;  // 512 decls total with the default satellite counts
  cfg.stmts_per_handler = 28;
  const std::string source = lucid::frontend::generate_program(cfg);
  const std::string edit_src = lucid::frontend::edit_one_handler(source, 0);

  Results r;
  r.decls = cfg.decl_count();
  r.handlers = cfg.handlers;
  r.hardware_threads = std::thread::hardware_concurrency();

  lucid::DriverOptions opts;
  opts.program_name = "progen";
  const lucid::CompilerDriver driver(opts);

  const lucid::CompilationPtr prev = driver.run(source, lucid::Stage::Layout);
  if (!prev->ok()) {
    std::fprintf(stderr, "FATAL: generated program does not compile:\n%s\n",
                 prev->diags().render().c_str());
    return 1;
  }

  // Differential gate: the one-decl-edit recompile must match cold output.
  check_identical(driver, prev, edit_src, "progen/edit");

  print_header("bench_frontend",
               "front-end scaling: incremental parse, patched Phase A, "
               "parallel Sema");
  std::printf("%d decls (%d handlers), one-handler edit\n\n", r.decls,
              r.handlers);

  // ---- Parse: cold vs incremental (one-decl edit) -------------------------
  {
    // Warm up both paths once before timing.
    (void)driver.run(edit_src, lucid::Stage::Parse);
    (void)driver.recompile(prev, edit_src, lucid::Stage::Parse);
    const auto t_cold = Clock::now();
    for (int i = 0; i < kParseReps; ++i) {
      const lucid::CompilationPtr c =
          driver.run(edit_src, lucid::Stage::Parse);
      if (!c->ok()) return 1;
    }
    r.parse_cold_ms = ms_since(t_cold);
    const auto t_edit = Clock::now();
    for (int i = 0; i < kParseReps; ++i) {
      const lucid::CompilationPtr c =
          driver.recompile(prev, edit_src, lucid::Stage::Parse);
      if (!c->ok()) return 1;
      r.parse_reused = c->record(lucid::Stage::Parse).decls_reused;
    }
    r.parse_edit_ms = ms_since(t_edit);
  }

  // ---- Phase A: cold analyze_layout vs update with one dirty handler ------
  {
    lucid::CompilationPtr rec = driver.recompile(prev, edit_src);
    if (!rec->ok()) return 1;
    const auto prev_an = prev->layout_analysis_ptr();
    const std::set<std::string> dirty = {"ev0"};  // the edited handler
    const auto t_cold = Clock::now();
    for (int i = 0; i < kPhaseAReps; ++i) {
      if (lucid::opt::analyze_layout(rec->ir()) == nullptr) return 1;
    }
    r.phasea_cold_ms = ms_since(t_cold);
    int reused = 0;
    const auto t_inc = Clock::now();
    for (int i = 0; i < kPhaseAReps; ++i) {
      if (lucid::opt::update_layout_analysis(*prev_an, rec->ir(), dirty, 64,
                                             &reused) == nullptr) {
        std::fprintf(stderr, "FATAL: analysis patch unexpectedly fell back\n");
        return 1;
      }
    }
    r.phasea_inc_ms = ms_since(t_inc);
    r.handlers_reused = reused;
  }

  // ---- Sema: serial vs 8 workers, identical diagnostics -------------------
  {
    lucid::DriverOptions par_opts = opts;
    par_opts.sema_workers = kSemaWorkers;
    const lucid::CompilerDriver par_driver(par_opts);
    const lucid::CompilationPtr a = driver.run(source, lucid::Stage::Sema);
    const lucid::CompilationPtr b = par_driver.run(source, lucid::Stage::Sema);
    if (!a->ok() || !b->ok() ||
        a->diags().render() != b->diags().render()) {
      std::fprintf(stderr,
                   "FATAL: parallel Sema diagnostics diverged from serial\n");
      return 1;
    }
    const auto t_serial = Clock::now();
    for (int i = 0; i < kSemaReps; ++i) {
      const lucid::CompilationPtr c = driver.run(source, lucid::Stage::Sema);
      if (!c->ok()) return 1;
      r.sema_serial_ms += c->record(lucid::Stage::Sema).wall_ms;
    }
    (void)ms_since(t_serial);
    const auto t_par = Clock::now();
    for (int i = 0; i < kSemaReps; ++i) {
      const lucid::CompilationPtr c =
          par_driver.run(source, lucid::Stage::Sema);
      if (!c->ok()) return 1;
      r.sema_parallel_ms += c->record(lucid::Stage::Sema).wall_ms;
    }
    (void)ms_since(t_par);
  }

  std::printf("%-28s %10.2f ms  (x%d reps)\n", "parse: cold",
              r.parse_cold_ms, kParseReps);
  std::printf("%-28s %10.2f ms  (%ld decls spliced)\n",
              "parse: one-decl edit", r.parse_edit_ms, r.parse_reused);
  std::printf("%-28s %10.2f ms  (x%d reps)\n", "phase A: cold",
              r.phasea_cold_ms, kPhaseAReps);
  std::printf("%-28s %10.2f ms  (%ld handlers reused)\n",
              "phase A: incremental", r.phasea_inc_ms, r.handlers_reused);
  std::printf("%-28s %10.2f ms  (stage wall, x%d reps)\n", "sema: serial",
              r.sema_serial_ms, kSemaReps);
  std::printf("%-28s %10.2f ms  (%d workers)\n", "sema: parallel",
              r.sema_parallel_ms, kSemaWorkers);
  print_rule();

  bool ok = true;
  if (r.parse_speedup() >= 5.0) {
    std::printf("incremental parse beats cold by %.2fx (target: 5x)\n",
                r.parse_speedup());
  } else {
    std::printf("WARNING: incremental-parse speedup %.2fx below the 5x "
                "target\n",
                r.parse_speedup());
    ok = false;
  }
  if (r.phasea_speedup() >= 3.0) {
    std::printf("patched Phase A beats cold by %.2fx (target: 3x)\n",
                r.phasea_speedup());
  } else {
    std::printf("WARNING: Phase A patch speedup %.2fx below the 3x target\n",
                r.phasea_speedup());
    ok = false;
  }
  if (r.sema_speedup() >= 2.0) {
    std::printf("parallel Sema beats serial by %.2fx at %d workers "
                "(target: 2x)\n",
                r.sema_speedup(), kSemaWorkers);
  } else if (r.hardware_threads < 4) {
    // A >= 2x parallel speedup needs cores to run on; on a 1-2 core box the
    // measurement only proves determinism (asserted above), not scaling.
    std::printf("parallel-Sema gate skipped: %u hardware thread(s) < 4 "
                "(measured %.2fx; diagnostics verified identical)\n",
                r.hardware_threads, r.sema_speedup());
  } else {
    std::printf("WARNING: parallel-Sema speedup %.2fx below the 2x target\n",
                r.sema_speedup());
    ok = false;
  }
  (void)ok;

  write_json(r, "BENCH_frontend.json");
  return 0;
}
