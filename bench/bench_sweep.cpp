// Sweep-engine benchmark: what does clone-from-stage + caching + parallel
// emission buy over naive recompilation?
//
// For each of the ten paper apps, compile against a 4-point resource-model
// grid (stages=4,8,12,16) and emit both backends per variant, three ways:
//
//   cold      N independent CompilerDriver runs (front end paid N times)
//   shared    one front end + clone_from_stage per variant, serial
//   parallel  the SweepEngine with a worker pool (front end paid once,
//             layout + emission fanned out across threads)
//
// and once more with a warm ArtifactCache ("cached"), where even the single
// front-end run is served as a clone of the cached master.
//
// Besides the human-readable table, the run writes BENCH_sweep.json (in the
// working directory): per-app wall clocks for all four modes plus
// per-backend emission totals, so the perf trajectory is machine-trackable
// across PRs.
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include "bench/bench_common.hpp"
#include "core/backends.hpp"
#include "core/cache.hpp"
#include "core/sweep.hpp"
#include "support/chrono.hpp"

namespace {

using Clock = lucid::SteadyClock;
using lucid::bench::print_header;
using lucid::bench::print_rule;
using lucid::ms_since;

const char* kGrid = "stages=4,8,12,16;salus=2,4";
const std::vector<std::string> kBackends = {"p4", "ebpf", "interp"};

double run_cold(const lucid::apps::AppSpec& spec,
                const std::vector<lucid::SweepVariant>& variants) {
  const auto t0 = Clock::now();
  for (const lucid::SweepVariant& v : variants) {
    lucid::DriverOptions opts;
    opts.model = v.model;
    opts.program_name = spec.key;
    const lucid::CompilerDriver driver(opts);
    const lucid::CompilationPtr comp = driver.run(spec.source);
    if (!comp->ok()) {
      std::fprintf(stderr, "FATAL: %s/%s failed to compile\n",
                   spec.key.c_str(), v.label.c_str());
      std::exit(1);
    }
    for (const std::string& b : kBackends) {
      if (!driver.emit(comp, b).ok) {
        std::fprintf(stderr, "FATAL: %s/%s emit %s failed\n",
                     spec.key.c_str(), v.label.c_str(), b.c_str());
        std::exit(1);
      }
    }
  }
  return ms_since(t0);
}

double run_shared_serial(const lucid::apps::AppSpec& spec,
                         const std::vector<lucid::SweepVariant>& variants) {
  const auto t0 = Clock::now();
  lucid::DriverOptions base_opts;
  base_opts.program_name = spec.key;
  const lucid::CompilerDriver driver(base_opts);
  const lucid::CompilationPtr base =
      driver.run(spec.source, lucid::Stage::Lower);
  for (const lucid::SweepVariant& v : variants) {
    lucid::DriverOptions opts;
    opts.model = v.model;
    opts.program_name = spec.key;
    const lucid::CompilationPtr comp =
        base->clone_from_stage(lucid::Stage::Lower, opts);
    const lucid::CompilerDriver vdriver(opts);
    vdriver.run_until(comp, lucid::Stage::Layout);
    for (const std::string& b : kBackends) (void)vdriver.emit(comp, b);
  }
  return ms_since(t0);
}

double run_sweep(const lucid::apps::AppSpec& spec,
                 const std::vector<lucid::SweepVariant>& variants,
                 lucid::ArtifactCache* cache,
                 std::map<std::string, double>* emit_ms_by_backend = nullptr) {
  lucid::SweepOptions opts;
  opts.variants = variants;
  opts.backends = kBackends;
  opts.program_name = spec.key;
  opts.workers = 0;  // hardware concurrency
  opts.cache = cache;
  const auto t0 = Clock::now();
  const lucid::SweepReport report =
      lucid::SweepEngine().run(spec.source, opts);
  if (!report.ok) {
    std::fprintf(stderr, "FATAL: sweep over %s failed:\n%s",
                 spec.key.c_str(), report.str().c_str());
    std::exit(1);
  }
  if (emit_ms_by_backend != nullptr) {
    for (const lucid::SweepVariantReport& vr : report.variants) {
      for (const lucid::SweepEmission& e : vr.emissions) {
        (*emit_ms_by_backend)[e.backend] += e.wall_ms;
      }
    }
  }
  return ms_since(t0);
}

/// One app's measurements, destined for BENCH_sweep.json.
struct AppRow {
  std::string key;
  double cold_ms = 0;
  double shared_ms = 0;
  double par_ms = 0;
  double cached_ms = 0;
  std::map<std::string, double> par_emit_ms;     // per-backend, cold cache
  std::map<std::string, double> cached_emit_ms;  // per-backend, warm cache
};

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void write_json(const std::vector<AppRow>& rows, const AppRow& totals,
                std::size_t variant_count, const char* path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "WARNING: cannot write %s\n", path);
    return;
  }
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  const auto emit_map = [&os](const std::map<std::string, double>& m) {
    os << "{";
    bool first = true;
    for (const auto& [backend, ms] : m) {
      if (!first) os << ", ";
      first = false;
      os << "\"" << json_escape(backend) << "\": " << ms;
    }
    os << "}";
  };
  const auto row = [&](const AppRow& r) {
    os << "    {\"app\": \"" << json_escape(r.key) << "\", "
       << "\"cold_ms\": " << r.cold_ms << ", "
       << "\"shared_ms\": " << r.shared_ms << ", "
       << "\"par_ms\": " << r.par_ms << ", "
       << "\"cached_ms\": " << r.cached_ms << ", "
       << "\"par_emit_ms\": ";
    emit_map(r.par_emit_ms);
    os << ", \"cached_emit_ms\": ";
    emit_map(r.cached_emit_ms);
    os << "}";
  };
  os << "{\n"
     << "  \"bench\": \"bench_sweep\",\n"
     << "  \"grid\": \"" << json_escape(kGrid) << "\",\n"
     << "  \"variants\": " << variant_count << ",\n"
     << "  \"workers\": " << std::thread::hardware_concurrency() << ",\n"
     << "  \"backends\": [";
  for (std::size_t i = 0; i < kBackends.size(); ++i) {
    if (i > 0) os << ", ";
    os << "\"" << json_escape(kBackends[i]) << "\"";
  }
  os << "],\n  \"apps\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    row(rows[i]);
    os << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  os << "  ],\n  \"totals\": ";
  row(totals);
  os << ",\n  \"speedup_cold_over_par\": "
     << (totals.par_ms > 0 ? totals.cold_ms / totals.par_ms : 0.0) << "\n"
     << "}\n";
  out << os.str();
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main() {
  lucid::register_default_backends();
  const auto variants = *lucid::parse_sweep_grid(kGrid);

  // Warm up allocators, code paths, and the thread pool once so the first
  // timed row is not paying process-start costs.
  (void)run_sweep(lucid::apps::all_apps().front(), variants, nullptr);

  print_header("bench_sweep",
               "resource-model sweep (" + std::string(kGrid) + ", " +
                   std::to_string(kBackends.size()) +
                   " backends): cold vs shared front end vs parallel sweep");
  std::printf("workers: %u\n\n", std::thread::hardware_concurrency());
  std::printf("%-6s %10s %10s %10s %10s   %s\n", "app", "cold ms",
              "shared ms", "par ms", "cached ms", "speedup (cold/par)");

  std::vector<AppRow> rows;
  AppRow totals;
  totals.key = "total";
  lucid::ArtifactCache cache;  // warmed by the "par" run, reused by "cached"
  for (const lucid::apps::AppSpec& spec : lucid::apps::all_apps()) {
    AppRow r;
    r.key = spec.key;
    r.cold_ms = run_cold(spec, variants);
    r.shared_ms = run_shared_serial(spec, variants);
    r.par_ms = run_sweep(spec, variants, &cache, &r.par_emit_ms);
    r.cached_ms = run_sweep(spec, variants, &cache, &r.cached_emit_ms);
    totals.cold_ms += r.cold_ms;
    totals.shared_ms += r.shared_ms;
    totals.par_ms += r.par_ms;
    totals.cached_ms += r.cached_ms;
    for (const auto& [b, ms] : r.par_emit_ms) totals.par_emit_ms[b] += ms;
    for (const auto& [b, ms] : r.cached_emit_ms) {
      totals.cached_emit_ms[b] += ms;
    }
    std::printf("%-6s %10.2f %10.2f %10.2f %10.2f   %.2fx\n",
                spec.key.c_str(), r.cold_ms, r.shared_ms, r.par_ms,
                r.cached_ms, r.par_ms > 0 ? r.cold_ms / r.par_ms : 0.0);
    rows.push_back(std::move(r));
  }
  print_rule();
  const double cold_total = totals.cold_ms, par_total = totals.par_ms;
  std::printf("%-6s %10.2f %10.2f %10.2f %10.2f   %.2fx\n", "total",
              totals.cold_ms, totals.shared_ms, totals.par_ms,
              totals.cached_ms,
              totals.par_ms > 0 ? totals.cold_ms / totals.par_ms : 0.0);
  std::printf(
      "\ncold   = front end recompiled per variant (%zu variants)\n"
      "shared = one front end, clone_from_stage per variant, serial\n"
      "par    = SweepEngine: shared front end + parallel layout/emission\n"
      "cached = SweepEngine over a warm ArtifactCache (zero front-end runs)\n",
      variants.size());
  if (par_total < cold_total) {
    std::printf("parallel sweep beats %zu cold compiles by %.2fx\n",
                variants.size(), cold_total / par_total);
  } else {
    std::printf("WARNING: parallel sweep did not beat cold compiles\n");
  }
  write_json(rows, totals, variants.size(), "BENCH_sweep.json");
  return 0;
}
