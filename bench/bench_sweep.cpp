// Sweep-engine benchmark: what does clone-from-stage + caching + parallel
// emission buy over naive recompilation?
//
// For each of the ten paper apps, compile against a 4-point resource-model
// grid (stages=4,8,12,16) and emit both backends per variant, three ways:
//
//   cold      N independent CompilerDriver runs (front end paid N times)
//   shared    one front end + clone_from_stage per variant, serial
//   parallel  the SweepEngine with a worker pool (front end paid once,
//             layout + emission fanned out across threads)
//
// and once more with a warm ArtifactCache ("cached"), where even the single
// front-end run is served as a clone of the cached master.
#include <cstdio>
#include <thread>

#include "bench/bench_common.hpp"
#include "core/backends.hpp"
#include "core/cache.hpp"
#include "core/sweep.hpp"
#include "support/chrono.hpp"

namespace {

using Clock = lucid::SteadyClock;
using lucid::bench::print_header;
using lucid::bench::print_rule;
using lucid::ms_since;

const char* kGrid = "stages=4,8,12,16;salus=2,4";
const std::vector<std::string> kBackends = {"p4", "interp"};

double run_cold(const lucid::apps::AppSpec& spec,
                const std::vector<lucid::SweepVariant>& variants) {
  const auto t0 = Clock::now();
  for (const lucid::SweepVariant& v : variants) {
    lucid::DriverOptions opts;
    opts.model = v.model;
    opts.program_name = spec.key;
    const lucid::CompilerDriver driver(opts);
    const lucid::CompilationPtr comp = driver.run(spec.source);
    if (!comp->ok()) {
      std::fprintf(stderr, "FATAL: %s/%s failed to compile\n",
                   spec.key.c_str(), v.label.c_str());
      std::exit(1);
    }
    for (const std::string& b : kBackends) {
      if (!driver.emit(comp, b).ok) {
        std::fprintf(stderr, "FATAL: %s/%s emit %s failed\n",
                     spec.key.c_str(), v.label.c_str(), b.c_str());
        std::exit(1);
      }
    }
  }
  return ms_since(t0);
}

double run_shared_serial(const lucid::apps::AppSpec& spec,
                         const std::vector<lucid::SweepVariant>& variants) {
  const auto t0 = Clock::now();
  lucid::DriverOptions base_opts;
  base_opts.program_name = spec.key;
  const lucid::CompilerDriver driver(base_opts);
  const lucid::CompilationPtr base =
      driver.run(spec.source, lucid::Stage::Lower);
  for (const lucid::SweepVariant& v : variants) {
    lucid::DriverOptions opts;
    opts.model = v.model;
    opts.program_name = spec.key;
    const lucid::CompilationPtr comp =
        base->clone_from_stage(lucid::Stage::Lower, opts);
    const lucid::CompilerDriver vdriver(opts);
    vdriver.run_until(comp, lucid::Stage::Layout);
    for (const std::string& b : kBackends) (void)vdriver.emit(comp, b);
  }
  return ms_since(t0);
}

double run_sweep(const lucid::apps::AppSpec& spec,
                 const std::vector<lucid::SweepVariant>& variants,
                 lucid::ArtifactCache* cache) {
  lucid::SweepOptions opts;
  opts.variants = variants;
  opts.backends = kBackends;
  opts.program_name = spec.key;
  opts.workers = 0;  // hardware concurrency
  opts.cache = cache;
  const auto t0 = Clock::now();
  const lucid::SweepReport report =
      lucid::SweepEngine().run(spec.source, opts);
  if (!report.ok) {
    std::fprintf(stderr, "FATAL: sweep over %s failed:\n%s",
                 spec.key.c_str(), report.str().c_str());
    std::exit(1);
  }
  return ms_since(t0);
}

}  // namespace

int main() {
  lucid::register_default_backends();
  const auto variants = *lucid::parse_sweep_grid(kGrid);

  // Warm up allocators, code paths, and the thread pool once so the first
  // timed row is not paying process-start costs.
  (void)run_sweep(lucid::apps::all_apps().front(), variants, nullptr);

  print_header("bench_sweep",
               "resource-model sweep (" + std::string(kGrid) + ", " +
                   std::to_string(kBackends.size()) +
                   " backends): cold vs shared front end vs parallel sweep");
  std::printf("workers: %u\n\n", std::thread::hardware_concurrency());
  std::printf("%-6s %10s %10s %10s %10s   %s\n", "app", "cold ms",
              "shared ms", "par ms", "cached ms", "speedup (cold/par)");

  double cold_total = 0, shared_total = 0, par_total = 0, cached_total = 0;
  lucid::ArtifactCache cache;  // warmed by the "par" run, reused by "cached"
  for (const lucid::apps::AppSpec& spec : lucid::apps::all_apps()) {
    const double cold = run_cold(spec, variants);
    const double shared = run_shared_serial(spec, variants);
    const double par = run_sweep(spec, variants, &cache);
    const double cached = run_sweep(spec, variants, &cache);
    cold_total += cold;
    shared_total += shared;
    par_total += par;
    cached_total += cached;
    std::printf("%-6s %10.2f %10.2f %10.2f %10.2f   %.2fx\n",
                spec.key.c_str(), cold, shared, par, cached,
                par > 0 ? cold / par : 0.0);
  }
  print_rule();
  std::printf("%-6s %10.2f %10.2f %10.2f %10.2f   %.2fx\n", "total",
              cold_total, shared_total, par_total, cached_total,
              par_total > 0 ? cold_total / par_total : 0.0);
  std::printf(
      "\ncold   = front end recompiled per variant (%zu variants)\n"
      "shared = one front end, clone_from_stage per variant, serial\n"
      "par    = SweepEngine: shared front end + parallel layout/emission\n"
      "cached = SweepEngine over a warm ArtifactCache (zero front-end runs)\n",
      variants.size());
  if (par_total < cold_total) {
    std::printf("parallel sweep beats %zu cold compiles by %.2fx\n",
                variants.size(), cold_total / par_total);
  } else {
    std::printf("WARNING: parallel sweep did not beat cold compiles\n");
  }
  return 0;
}
