// Multi-core native data path: the sharded ReplicaFleet, in-loop batching,
// and threaded dispatch, measured on the ten paper applications.
//
// Three acceptance gates, in the order they are checked:
//
//   (a) State: per-shard register state from a fleet run must be
//       byte-identical to a single-threaded Replica run of that shard's
//       injection subsequence (re-derived here with ReplicaFleet::route,
//       independently of the fleet's own partitioning). Checked on every
//       app. The same rows also pin that the batched event loop and the
//       PR 7 per-entry loop are indistinguishable on burst schedules.
//
//   (b) Scaling: aggregate event-loop pps at 8 shards >= 4x the 1-shard
//       baseline on the heaviest app. Requires real cores — below 8
//       hardware threads the gate is skipped and the skip is recorded in
//       the JSON (the sweep still runs so the trajectory has the numbers).
//
//   (c) Batching: with one shard, the batched drain alone must be >= 1.3x
//       the per-entry loop's event-loop pps (geomean across apps — burst
//       schedules give every traffic-bearing app same-timestamp drains).
//
// A dispatch column reports the switch vs computed-goto raw run_batch
// measurement; the winner is what the fleet rows below it run.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/apps.hpp"
#include "bench/bench_common.hpp"
#include "native/differential.hpp"
#include "native/fleet.hpp"

namespace {

using namespace lucid;

constexpr int kBursts = 600;
constexpr int kBurstSize = 32;
constexpr int kScaleBursts = 400;
constexpr int kReps = 7;
constexpr int kStateShards = 4;
constexpr double kRequiredBatchSpeedup = 1.3;
constexpr double kRequiredScaling = 4.0;
constexpr int kScalingShards[] = {1, 2, 4, 8};

struct AppRow {
  std::string key;
  std::string detail;            // first failure, empty when clean
  bool batch_state_ok = false;   // batched vs per-entry loop identical
  bool fleet_state_ok = false;   // per-shard differential-state contract
  std::uint64_t passes = 0;      // pipeline passes in the timed runs
  double nobatch_pps = 0.0;      // per-entry event loop (PR 7 baseline)
  double batch_pps = 0.0;        // batched event loop
  double batch_speedup = 0.0;
  double switch_raw_pps = 0.0;   // raw run_batch, switch dispatch
  double goto_raw_pps = 0.0;     // raw run_batch, computed-goto dispatch
  std::string dispatch;          // winner the fleet rows run
};

struct ScalePoint {
  int shards = 0;
  std::uint64_t executed = 0;
  double wall_s = 0.0;
  double pps = 0.0;
};

/// Best-of-reps timing for the gate (c) pair, with the per-entry and
/// batched reps *interleaved*: on a machine whose speed drifts (frequency
/// scaling, background load), timing all of one mode and then all of the
/// other skews the ratio by whatever the machine did between the blocks —
/// alternating reps samples both modes under the same conditions, and
/// best-of keeps the quietest window for each. Both engines are
/// deterministic, so reps only tighten the timing and any rep's state
/// serves the differential compare.
bool timed_pair(const std::shared_ptr<const native::Program>& prog,
                const native::diff::Schedule& sched,
                native::diff::EngineResult* nobatch,
                native::diff::EngineResult* batch) {
  for (int rep = 0; rep < kReps; ++rep) {
    native::ReplicaConfig cfg;
    cfg.batch_loop = false;
    auto a = native::diff::run_native(prog, sched, cfg);
    cfg.batch_loop = true;
    auto b = native::diff::run_native(prog, sched, cfg);
    if (!a.ok) { *nobatch = std::move(a); return false; }
    if (!b.ok) { *batch = std::move(b); return false; }
    if (rep == 0 || a.wall_s < nobatch->wall_s) *nobatch = std::move(a);
    if (rep == 0 || b.wall_s < batch->wall_s) *batch = std::move(b);
  }
  return true;
}

/// Gate (a): run the schedule through a fleet, then re-derive each shard's
/// injection subsequence with the public routing hash and replay it on a
/// plain single-threaded Replica. Every shard's register slab must match
/// byte for byte, and the merged pass count must equal the references' sum.
std::string check_fleet_state(
    const std::shared_ptr<const native::Program>& prog,
    const native::diff::Schedule& sched, int shards) {
  native::FleetConfig fcfg;
  fcfg.shards = shards;
  fcfg.label_metrics = false;  // keep the obs registry out of the bench
  native::ReplicaFleet fleet(prog, fcfg);
  for (const auto& e : sched.entries) {
    if (!fleet.schedule_inject(e.t, e.event, e.args)) {
      return "fleet rejected event " + e.event;
    }
  }
  fleet.run_until(sched.horizon);

  std::uint64_t ref_executed = 0;
  for (int s = 0; s < shards; ++s) {
    native::Replica ref(prog, native::ReplicaConfig{});
    for (const auto& e : sched.entries) {
      const ir::EventInfo* ev = prog->find_event(e.event);
      const std::size_t dest = native::ReplicaFleet::route(
          shards, /*location=*/-1, ev->event_id, e.args);
      if (dest != static_cast<std::size_t>(s)) continue;
      if (!ref.schedule_inject(e.t, e.event, e.args)) {
        return "reference rejected event " + e.event;
      }
    }
    ref.run_until(sched.horizon);
    ref_executed += ref.stats().executed;

    const native::Replica& live = fleet.shard(static_cast<std::size_t>(s));
    for (std::size_t a = 0; a < ref.array_count(); ++a) {
      const auto& want = ref.array_cells(a);
      const auto& got = live.array_cells(a);
      for (std::size_t j = 0; j < want.size(); ++j) {
        if (want[j] != got[j]) {
          return "shard " + std::to_string(s) + " array " +
                 prog->ir().arrays[a].name + "[" + std::to_string(j) +
                 "]: reference=" + std::to_string(want[j]) +
                 " fleet=" + std::to_string(got[j]);
        }
      }
    }
    if (ref.stats().executed != live.stats().executed) {
      return "shard " + std::to_string(s) + " executed: reference=" +
             std::to_string(ref.stats().executed) +
             " fleet=" + std::to_string(live.stats().executed);
    }
  }
  if (fleet.merged_stats().executed != ref_executed) {
    return "merged executed differs from reference sum";
  }
  return {};
}

AppRow run_app(const apps::AppSpec& spec, std::uint64_t seed) {
  AppRow row;
  row.key = spec.key;

  interp::TestbedConfig probe_cfg;
  probe_cfg.program_name = spec.key;
  interp::Testbed probe(spec.source, probe_cfg);
  if (!probe.ok()) {
    row.detail = "compile failed: " + probe.diagnostics();
    return row;
  }
  const auto sched = native::diff::make_burst_schedule(
      probe.compilation().ir(), seed, kBursts, kBurstSize);

  // Dispatch experiment: build both variants, measure each module's raw
  // run_batch throughput, and run everything below on the winner — the same
  // pick ProgramOptions::measure_dispatch automates.
  std::string err;
  const auto sw = native::Program::build(probe.compilation_ptr(), &err,
                                         {native::Dispatch::kSwitch});
  if (sw == nullptr) {
    row.detail = "native build failed: " + err;
    return row;
  }
  row.switch_raw_pps = native::measure_raw_batch_pps(sw->ir(), sw->module());
  auto prog = sw;
  std::string goto_err;
  const auto tg = native::Program::build(probe.compilation_ptr(), &goto_err,
                                         {native::Dispatch::kThreadedGoto});
  if (tg != nullptr) {
    row.goto_raw_pps = native::measure_raw_batch_pps(tg->ir(), tg->module());
    if (row.goto_raw_pps > row.switch_raw_pps) prog = tg;
  }
  row.dispatch = native::dispatch_name(prog->dispatch());

  // Gate (c) timing pair: per-entry loop vs batched drain, same schedule,
  // reps interleaved so machine-speed drift cancels out of the ratio.
  native::diff::EngineResult nobatch;
  native::diff::EngineResult batch;
  if (!timed_pair(prog, sched, &nobatch, &batch)) {
    row.detail = !nobatch.ok ? nobatch.error : batch.error;
    return row;
  }
  row.detail = native::diff::compare(prog->ir(), nobatch, batch);
  row.batch_state_ok = row.detail.empty();
  if (!row.batch_state_ok) return row;

  row.passes = batch.executed;
  if (nobatch.wall_s > 0) {
    row.nobatch_pps = static_cast<double>(nobatch.executed) / nobatch.wall_s;
  }
  if (batch.wall_s > 0) {
    row.batch_pps = static_cast<double>(batch.executed) / batch.wall_s;
  }
  if (row.nobatch_pps > 0) {
    row.batch_speedup = row.batch_pps / row.nobatch_pps;
  }

  // Gate (a): the per-shard differential-state contract.
  row.detail = check_fleet_state(prog, sched, kStateShards);
  row.fleet_state_ok = row.detail.empty();
  return row;
}

/// Gate (b) sweep: one burst schedule, partitioned by the fleet at 1/2/4/8
/// shards. The merged pass count is shard-count invariant (each injection
/// lands on exactly one shard and cascades there), so pps comparisons are
/// over identical work.
std::vector<ScalePoint> run_scaling(
    const std::shared_ptr<const native::Program>& prog,
    const native::diff::Schedule& sched) {
  std::vector<ScalePoint> points;
  for (const int shards : kScalingShards) {
    ScalePoint p;
    p.shards = shards;
    for (int rep = 0; rep < kReps; ++rep) {
      native::FleetConfig fcfg;
      fcfg.shards = shards;
      fcfg.label_metrics = false;
      native::ReplicaFleet fleet(prog, fcfg);
      for (const auto& e : sched.entries) {
        fleet.schedule_inject(e.t, e.event, e.args);
      }
      const auto t0 = std::chrono::steady_clock::now();
      fleet.run_until(sched.horizon);
      const auto t1 = std::chrono::steady_clock::now();
      const double wall = std::chrono::duration<double>(t1 - t0).count();
      if (rep == 0 || wall < p.wall_s) p.wall_s = wall;
      p.executed = fleet.merged_stats().executed;
    }
    if (p.wall_s > 0) {
      p.pps = static_cast<double>(p.executed) / p.wall_s;
    }
    points.push_back(p);
  }
  return points;
}

}  // namespace

int main() {
  const unsigned hw = std::thread::hardware_concurrency();
  bench::print_header(
      "Multi-core native data path",
      "sharded ReplicaFleet + in-loop batching + threaded dispatch "
      "(per-shard differential-state contract enforced per row)");

  std::vector<AppRow> rows;
  std::uint64_t seed = 0x5CA1AB1E;
  for (const auto& spec : apps::all_apps()) {
    rows.push_back(run_app(spec, seed++));
  }

  std::printf("  %-8s | %9s | %11s | %11s | %6s | %8s | %5s\n", "app",
              "passes", "entry pps", "batch pps", "batch", "dispatch",
              "state");
  bench::print_rule();
  bool all_state = true;
  double log_sum = 0.0;
  std::size_t timed = 0;
  for (const auto& r : rows) {
    std::printf("  %-8s | %9llu | %11.0f | %11.0f | %5.2fx | %8s | %s\n",
                r.key.c_str(), static_cast<unsigned long long>(r.passes),
                r.nobatch_pps, r.batch_pps, r.batch_speedup,
                r.dispatch.c_str(),
                r.batch_state_ok && r.fleet_state_ok ? "ok" : "DIFF");
    if (!r.batch_state_ok || !r.fleet_state_ok) {
      std::printf("    !! %s\n", r.detail.c_str());
      all_state = false;
    }
    if (r.batch_speedup > 0) {
      log_sum += std::log(r.batch_speedup);
      ++timed;
    }
  }
  const double batch_geomean =
      timed > 0 ? std::exp(log_sum / static_cast<double>(timed)) : 0.0;
  const bool batch_ok = all_state && batch_geomean >= kRequiredBatchSpeedup;

  // Scaling sweep on the heaviest app (longest batched wall == most passes
  // per second of real work, so pool overhead is smallest relative to it).
  std::size_t heavy = 0;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].passes > rows[heavy].passes) heavy = i;
  }
  const apps::AppSpec& hspec = apps::all_apps()[heavy];
  interp::TestbedConfig hcfg;
  hcfg.program_name = hspec.key;
  interp::Testbed hprobe(hspec.source, hcfg);
  std::string herr;
  const auto hprog =
      native::Program::build(hprobe.compilation_ptr(), &herr,
                             {native::Dispatch::kSwitch, true});
  std::vector<ScalePoint> scale;
  double scaling8 = 0.0;
  if (hprog != nullptr) {
    const auto hsched = native::diff::make_burst_schedule(
        hprog->ir(), 0xF1EE7, kScaleBursts, kBurstSize);
    scale = run_scaling(hprog, hsched);
    if (!scale.empty() && scale.front().pps > 0) {
      scaling8 = scale.back().pps / scale.front().pps;
    }
  }
  const bool scaling_measurable = hw >= 8;
  const bool scaling_ok =
      !scaling_measurable || scaling8 >= kRequiredScaling;

  bench::print_rule();
  std::printf("  scaling sweep (%s, %u hw threads):", hspec.key.c_str(), hw);
  for (const auto& p : scale) {
    std::printf("  %d-shard %.0f pps", p.shards, p.pps);
  }
  std::printf("\n");
  std::printf("  batching geomean %.2fx (gate >= %.1fx); 8-shard scaling "
              "%.2fx (gate >= %.1fx%s)\n",
              batch_geomean, kRequiredBatchSpeedup, scaling8,
              kRequiredScaling,
              scaling_measurable ? "" : ", SKIPPED: < 8 hw threads");

  bench::JsonWriter j;
  j.obj_open()
      .field("bench", "bench_native_mt")
      .field("bursts", kBursts)
      .field("burst_size", kBurstSize)
      .field("reps", kReps)
      .field("state_shards", kStateShards)
      .field("hw_threads", static_cast<std::uint64_t>(hw))
      .field("required_batch_speedup", kRequiredBatchSpeedup)
      .field("required_scaling", kRequiredScaling);
  j.arr_open("apps");
  for (const auto& r : rows) {
    j.obj_open()
        .field("key", r.key)
        .field("batch_state_identical", r.batch_state_ok)
        .field("fleet_state_identical", r.fleet_state_ok)
        .field("passes", r.passes)
        .field("entry_loop_pps", r.nobatch_pps)
        .field("batch_loop_pps", r.batch_pps)
        .field("batch_speedup", r.batch_speedup)
        .field("switch_raw_pps", r.switch_raw_pps)
        .field("goto_raw_pps", r.goto_raw_pps)
        .field("dispatch", r.dispatch)
        .obj_close();
  }
  j.arr_close();
  j.field("scaling_app", hspec.key);
  j.arr_open("scaling");
  for (const auto& p : scale) {
    j.obj_open()
        .field("shards", p.shards)
        .field("executed", p.executed)
        .field("wall_s", p.wall_s)
        .field("pps", p.pps)
        .obj_close();
  }
  j.arr_close();
  j.field("batch_geomean_speedup", batch_geomean)
      .field("scaling_8_shard", scaling8)
      .field("scaling_gate_skipped", !scaling_measurable)
      .field("gate_passed", all_state && batch_ok && scaling_ok)
      .obj_close();
  j.save("BENCH_native_mt.json");

  if (!(all_state && batch_ok && scaling_ok)) {
    std::fprintf(stderr,
                 "FAIL: multi-core native gate not met (state contract, "
                 "%.1fx batching floor, or %.1fx scaling floor)\n",
                 kRequiredBatchSpeedup, kRequiredScaling);
    return 1;
  }
  return 0;
}
