// Figure 17: stateful-firewall flow installation times — data-plane
// integrated control (the Lucid cuckoo table) vs remote control from the
// switch CPU (a Mantis-style baseline).
//
// Methodology mirrors section 7.4: ~1000 trials into a 2048-entry cuckoo
// table filled to load factor 0.3125 (640 flows per round, two independent
// rounds). Installation time is measured from the first packet's pass: a
// flow whose claim succeeds in-pass installs in 0 ns; each cuckoo
// re-install costs one recirculation (~600 ns).
//
// The remote baseline is measured, not sampled: each install goes through
// the real ctrl::ControlPlane queue (submit -> wait for the switch CPU's
// next apply tick -> batched register writes), with the CPU's service loop
// ticking every 35 us so the mean queue wait matches the paper's measured
// 17.5 us mean. Latency is the batch's applied_ns minus its submit time,
// reported by the plane's completion callback.
//
// Paper numbers to reproduce in shape: integrated average 49 ns, >90% at
// 0 ns, worst case ~2.4 us (4 recirculations); remote average 17.5 us —
// over 300x slower. Both are hard gates at the bottom of main.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/apps.hpp"
#include "bench/bench_common.hpp"
#include "ctrl/interp_bridge.hpp"
#include "interp/testbed.hpp"
#include "support/hash.hpp"
#include "workload/workload.hpp"

namespace {

using namespace lucid;

struct Samples {
  std::vector<double> integrated_ns;
  std::vector<double> remote_ns;
};

void run_round(std::uint64_t seed, Samples& out) {
  interp::Testbed tb(apps::app("SFW").source);
  if (!tb.ok()) {
    std::fprintf(stderr, "SFW failed to compile:\n%s\n",
                 tb.diagnostics().c_str());
    std::exit(1);
  }
  const sim::Time pipeline =
      tb.switch_at(1).config().pipeline_latency_ns;

  // Track the completion time of each flow's cuckoo chain via the trace
  // hook: the install completes at the last cuckoo_insert pass it triggers.
  sim::Time last_cuckoo = -1;
  tb.node(1).set_trace(
      [&](const std::string& ev, const pisa::Packet&) {
        if (ev == "cuckoo_insert") last_cuckoo = tb.sim().now();
      });

  const auto flows = workload::distinct_flows(640, 1 << 20, seed);
  for (const auto& f : flows) {
    const sim::Time t0 = tb.sim().now();
    last_cuckoo = -1;
    tb.node(1).inject("pkt_out", {f.src, f.dst});
    // A cuckoo chain of depth 8 completes well within 30 us.
    tb.settle(30 * sim::kUs);
    const double install =
        last_cuckoo < 0
            ? 0.0
            : static_cast<double>(last_cuckoo - (t0 + pipeline));
    out.integrated_ns.push_back(std::max(install, 0.0));
  }
}

// Mantis-style remote install: the switch CPU computes the flow key and the
// bank-1 slot (the same modeled hash the data plane uses), then pushes the
// register writes through the control-plane queue. The install is done when
// the CPU's apply tick commits the batch; latency is applied - submitted.
void run_remote_round(std::uint64_t seed, Samples& out) {
  interp::Testbed tb(apps::app("SFW").source);
  if (!tb.ok()) {
    std::fprintf(stderr, "SFW failed to compile:\n%s\n",
                 tb.diagnostics().c_str());
    std::exit(1);
  }
  ctrl::ControlPlaneConfig cfg;
  cfg.tick_ns = 35 * sim::kUs;  // CPU service loop -> 17.5 us mean wait
  ctrl::RuntimeControl rc(tb.node(1), cfg);

  sim::Rng rng(seed * 7919 + 13);
  const auto flows = workload::distinct_flows(640, 1 << 20, seed);
  for (const auto& f : flows) {
    // flowkey(src, dst) and the bank-1 index, as SFW's handlers compute
    // them (src/support/hash.hpp is the single modeled-hash definition).
    const auto k = static_cast<std::int64_t>(
        support::model_hash32(77, {f.src, f.dst}) | 1u);
    const std::int64_t i1 = support::model_hash32(1, {k}) & 1023;

    const sim::Time t0 = tb.sim().now();
    sim::Time applied = -1;
    ctrl::UpdateBatch batch;
    batch.writes.push_back(ctrl::RegWrite{"key1", i1, k});
    batch.writes.push_back(
        ctrl::RegWrite{"ts1", i1, t0 & 0xFFFFFFFF});
    batch.on_done = [&applied](const ctrl::BatchResult& r) {
      applied = r.applied_ns;
    };
    rc.plane().submit(std::move(batch));
    // Jittered spacing decorrelates the submit phase from the 35 us tick,
    // so waits sample the whole period (uniform phase -> 17.5 us mean).
    tb.settle(60 * sim::kUs + rng.uniform(0, 40 * sim::kUs));
    if (applied < t0) {
      std::fprintf(stderr, "FATAL: control-plane batch never applied\n");
      std::exit(1);
    }
    out.remote_ns.push_back(static_cast<double>(applied - t0));
  }
}

double mean(const std::vector<double>& v) {
  double s = 0;
  for (const double x : v) s += x;
  return v.empty() ? 0 : s / static_cast<double>(v.size());
}

double pct(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1));
  return v[idx];
}

}  // namespace

int main() {
  bench::print_header("Figure 17",
                      "SFW flow installation time: integrated vs remote "
                      "(1280 trials; 2048-entry cuckoo table at load factor "
                      "0.3125)");

  Samples s;
  run_round(5, s);
  run_round(17, s);
  run_remote_round(5, s);
  run_remote_round(17, s);

  const std::size_t n = s.integrated_ns.size();
  std::size_t zero = 0;
  std::size_t one_recirc = 0;
  double worst = 0;
  for (const double x : s.integrated_ns) {
    if (x == 0) ++zero;
    if (x > 0 && x < 1000) ++one_recirc;
    worst = std::max(worst, x);
  }

  std::printf("integrated (Lucid data plane):\n");
  std::printf("  trials                     : %zu\n", n);
  std::printf("  installed during first pass: %5.1f%%  (paper: >90%% at 0 "
              "ns)\n",
              100.0 * static_cast<double>(zero) / static_cast<double>(n));
  std::printf("  single recirculation       : %5.1f%%  (~600 ns each)\n",
              100.0 * static_cast<double>(one_recirc) /
                  static_cast<double>(n));
  std::printf("  average                    : %6.0f ns (paper: 49 ns)\n",
              mean(s.integrated_ns));
  std::printf("  p99 / worst                : %6.0f / %.0f ns (paper worst "
              "~2400 ns)\n",
              pct(s.integrated_ns, 0.99), worst);

  std::printf("\nremote control (switch CPU via the control-plane queue, "
              "35 us apply tick):\n");
  std::printf("  minimum                    : %6.0f ns (submit just before "
              "a tick)\n",
              pct(s.remote_ns, 0.0));
  std::printf("  average                    : %6.0f ns (paper: 17.5 us)\n",
              mean(s.remote_ns));
  std::printf("  p99                        : %6.0f ns\n",
              pct(s.remote_ns, 0.99));

  const double speedup = mean(s.remote_ns) /
                         std::max(mean(s.integrated_ns), 1.0);
  std::printf(
      "\nintegrated control is %.0fx faster on average (paper: >300x)\n",
      speedup);

  // CDF rows (log-scale buckets, like the figure's x axis).
  const std::vector<double> buckets = {0.0,      600.0,    1200.0,  2400.0,
                                       12'000.0, 20'000.0, 40'000.0};
  auto frac = [](const std::vector<double>& v, double bucket) {
    std::size_t c = 0;
    for (const double x : v) {
      if (x <= bucket) ++c;
    }
    return 100.0 * static_cast<double>(c) / static_cast<double>(v.size());
  };
  std::printf("\nCDF of installation time:\n");
  std::printf("  %12s | %11s | %8s\n", "<= bucket", "integrated", "remote");
  for (const double bucket : buckets) {
    std::printf("  %9.0f ns | %10.1f%% | %7.1f%%\n", bucket,
                frac(s.integrated_ns, bucket), frac(s.remote_ns, bucket));
  }

  bench::JsonWriter j;
  j.obj_open()
      .field("bench", "bench_fig17_flow_install")
      .field("trials", n)
      .obj_open("integrated")
      .field("first_pass_pct",
             100.0 * static_cast<double>(zero) / static_cast<double>(n))
      .field("single_recirc_pct",
             100.0 * static_cast<double>(one_recirc) /
                 static_cast<double>(n))
      .field("mean_ns", mean(s.integrated_ns))
      .field("p99_ns", pct(s.integrated_ns, 0.99))
      .field("worst_ns", worst)
      .obj_close()
      .obj_open("remote")
      .field("min_ns", pct(s.remote_ns, 0.0))
      .field("mean_ns", mean(s.remote_ns))
      .field("p99_ns", pct(s.remote_ns, 0.99))
      .obj_close()
      .field("mean_speedup", speedup);
  j.arr_open("cdf_bucket_ns");
  for (const double b : buckets) j.item(b);
  j.arr_close();
  j.arr_open("cdf_integrated_pct");
  for (const double b : buckets) j.item(frac(s.integrated_ns, b));
  j.arr_close();
  j.arr_open("cdf_remote_pct");
  for (const double b : buckets) j.item(frac(s.remote_ns, b));
  j.arr_close();

  // Acceptance gates: the modeled batching claim must actually hold in the
  // numbers this run produced — a remote mean inside the paper's measured
  // envelope, and an integrated-vs-remote speedup of at least two orders.
  const double remote_mean = mean(s.remote_ns);
  const bool gate =
      speedup >= 100.0 && remote_mean >= 10'000.0 && remote_mean <= 40'000.0;
  j.field("remote_model", "control-plane queue, 35us tick")
      .field("gate_passed", gate)
      .obj_close();
  j.save("BENCH_fig17.json");
  if (!gate) {
    std::fprintf(stderr,
                 "FAIL: batching speedup gate not met (speedup %.0fx, "
                 "remote mean %.0f ns)\n",
                 speedup, remote_mean);
    return 1;
  }
  return 0;
}
