// Figure 16: modeled worst-case recirculation overhead of the stateful
// firewall on the idealized PISA platform (1B pkt/s pipeline, 10x100 Gb/s
// front panel), with N = 2^16 entries and a 100 ms scan interval:
//
//   r = N/i + f * log2(N)
//
// Paper rows: f = 10K/100K/1M flows/s -> 815K/2M/16M pkts/s, 0.08%/0.22%/
// 1.66% utilization, minimum line-rate packet 125.26/125.55/127.67 B.
#include <cstdio>

#include "model/recirc_model.hpp"
#include "support/json.hpp"

int main() {
  using namespace lucid::model;
  std::printf(
      "-----------------------------------------------------------------\n"
      "Figure 16 — SFW worst-case recirculation (N=2^16, i=100 ms)\n"
      "-----------------------------------------------------------------\n");
  std::printf("%-14s | %14s | %12s | %14s\n", "flow rate f", "recirc rate",
              "pipeline util", "min pkt size");
  std::printf(
      "-----------------------------------------------------------------\n");
  lucid::support::JsonWriter j;
  j.obj_open().field("bench", "fig16_sfw_model");
  j.arr_open("rows");
  const double rates[] = {10e3, 100e3, 1e6};
  const char* labels[] = {"10K flows/s", "100K flows/s", "1M flows/s"};
  for (int i = 0; i < 3; ++i) {
    SfwModelParams p;
    p.flow_rate = rates[i];
    const SfwModelResult r = sfw_recirc_model(p);
    std::printf("%-14s | %11.0f /s | %11.2f%% | %12.2f B\n", labels[i],
                r.recirc_pps, r.pipeline_utilization * 100,
                r.min_pkt_bytes);
    j.obj_open()
        .field("flow_rate", rates[i])
        .field("recirc_pps", r.recirc_pps)
        .field("pipeline_utilization", r.pipeline_utilization)
        .field("min_pkt_bytes", r.min_pkt_bytes)
        .obj_close();
  }
  j.arr_close().obj_close();
  j.save("BENCH_fig16_sfw_model.json");
  std::printf(
      "-----------------------------------------------------------------\n"
      "paper:  815K/2M/16M pkts/s; 0.08%%/0.22%%/1.66%%; "
      "125.26/125.55/127.67 B\n\n");

  // Section 2.5's companion number: the serial link-scan thread.
  const auto scan = link_scan_overhead(128, 1.0);
  std::printf("section 2.5 check — 128-port link scan @1 us/step: %.0f "
              "pkts/s = %.1f%% of pipeline,\neach port checked every %.0f "
              "us (paper: 1M pkts/s, 0.1%%, 128 us)\n",
              scan.recirc_pps, scan.pipeline_fraction * 100,
              scan.per_port_scan_interval_us);
  return 0;
}
