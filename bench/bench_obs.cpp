// Observability overhead gate + sample trace/metrics producer.
//
// Part 1 (the gate): for each of the ten paper apps, pump a 64k synthetic
// packet vector through the native module three ways and compare pps:
//
//   raw      the module's generated entry point via Module::raw_run_batch()
//            — no instrumentation anywhere;
//   obs-off  Module::run_batch — batch-boundary metrics compiled in, tracing
//            compiled in but DISABLED (the shipping configuration);
//   obs-256  same, with tracing ENABLED at 1/256 sampling.
//
// Gates (geomean across apps, best-of-reps per mode — single-app jitter on a
// shared CI box is noise, a geometric regression is not):
//   obs-off >= (1 - 5%)  of raw
//   obs-256 >= (1 - 10%) of raw
//
// Part 2: a ten-app traced interpreter run (full sampling) that writes
// trace.json (Chrome trace-event JSON, loadable in Perfetto) and
// metrics.prom (Prometheus text exposition) next to BENCH_obs.json — CI
// validates both with tools/validate_obs.py and uploads the trace artifact.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "bench/bench_common.hpp"
#include "native/differential.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace lucid;

constexpr int kReps = 3;
constexpr double kMaxDisabledOverhead = 0.05;  // obs-off vs raw
constexpr double kMaxSampledOverhead = 0.10;   // obs-256 vs raw
constexpr double kMeasureSeconds = 0.08;

struct Workload {
  std::shared_ptr<const native::Program> prog;
  std::vector<std::vector<std::int64_t>> cells;
  std::vector<std::int64_t*> ptrs;
  std::vector<native::PacketIn> packets;
  std::vector<native::GenOut> out;
  std::vector<std::int32_t> counts;
  std::int32_t batch = 1 << 16;
};

bool build_workload(const apps::AppSpec& spec, std::uint64_t seed,
                    Workload* w, std::string* err) {
  interp::TestbedConfig probe_cfg;
  probe_cfg.program_name = spec.key;
  interp::Testbed probe(spec.source, probe_cfg);
  if (!probe.ok()) {
    *err = "compile failed: " + probe.diagnostics();
    return false;
  }
  w->prog = native::Program::build(probe.compilation_ptr(), err);
  if (w->prog == nullptr) return false;

  const ir::ProgramIR& ir = w->prog->ir();
  std::vector<const ir::EventInfo*> handled;
  for (const auto& ev : ir.events) {
    if (ev.has_handler) handled.push_back(&ev);
  }
  if (handled.empty()) {
    *err = "no handled events";
    return false;
  }
  for (const auto& arr : ir.arrays) {
    w->cells.emplace_back(static_cast<std::size_t>(arr.size), 0);
  }
  for (auto& c : w->cells) w->ptrs.push_back(c.data());

  std::uint64_t rng = seed;
  w->packets.resize(static_cast<std::size_t>(w->batch));
  for (std::int32_t i = 0; i < w->batch; ++i) {
    const ir::EventInfo* ev =
        handled[static_cast<std::size_t>(i) % handled.size()];
    native::PacketIn& in = w->packets[static_cast<std::size_t>(i)];
    in.event_id = ev->event_id;
    in.nargs = static_cast<std::int32_t>(ev->params.size());
    in.now_ns = 1000 + i;
    in.self_id = 1;
    for (std::int32_t a = 0; a < in.nargs; ++a) {
      in.args[a] =
          static_cast<std::int64_t>(native::diff::splitmix64(rng) % 100000);
    }
  }
  const auto gens = std::max<std::int32_t>(w->prog->module().max_gens(), 1);
  w->out.resize(static_cast<std::size_t>(w->batch) *
                static_cast<std::size_t>(gens));
  w->counts.resize(static_cast<std::size_t>(w->batch));
  return true;
}

/// Pumps batches through `call` for ~kMeasureSeconds; returns packets/s.
template <typename Fn>
double pump(const Workload& w, Fn&& call) {
  std::uint64_t total = 0;
  const auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  do {
    call();
    total += static_cast<std::uint64_t>(w.batch);
    elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  } while (elapsed < kMeasureSeconds);
  return static_cast<double>(total) / elapsed;
}

struct AppRow {
  std::string key;
  bool ok = false;
  std::string detail;
  double raw_pps = 0.0;
  double off_pps = 0.0;      // tracing compiled in, disabled
  double sampled_pps = 0.0;  // tracing enabled, 1/256 sampling
  [[nodiscard]] double off_ratio() const {
    return raw_pps > 0 ? off_pps / raw_pps : 0.0;
  }
  [[nodiscard]] double sampled_ratio() const {
    return raw_pps > 0 ? sampled_pps / raw_pps : 0.0;
  }
};

AppRow run_app(const apps::AppSpec& spec, std::uint64_t seed) {
  AppRow row;
  row.key = spec.key;
  Workload w;
  if (!build_workload(spec, seed, &w, &row.detail)) return row;

  const native::Module& mod = w.prog->module();
  const native::RunBatchFn raw = mod.raw_run_batch();
  auto call_raw = [&] {
    raw(w.ptrs.data(), w.packets.data(), w.batch, w.out.data(),
        w.counts.data());
  };
  auto call_instr = [&] {
    mod.run_batch(w.ptrs.data(), w.packets.data(), w.batch, w.out.data(),
                  w.counts.data());
  };

  // Interleave modes per rep and keep each mode's best — back-to-back
  // measurements see the same machine state, so drift hits all three alike.
  obs::Tracer::global().disable();
  for (int rep = 0; rep < kReps; ++rep) {
    row.raw_pps = std::max(row.raw_pps, pump(w, call_raw));
    row.off_pps = std::max(row.off_pps, pump(w, call_instr));
    obs::TracerConfig cfg;
    cfg.sample_every = 256;
    obs::Tracer::global().enable(cfg);
    row.sampled_pps = std::max(row.sampled_pps, pump(w, call_instr));
    obs::Tracer::global().disable();
  }
  row.ok = true;
  return row;
}

double geomean(const std::vector<AppRow>& rows, double (AppRow::*m)() const) {
  double log_sum = 0.0;
  std::size_t n = 0;
  for (const auto& r : rows) {
    const double v = (r.*m)();
    if (v > 0) {
      log_sum += std::log(v);
      ++n;
    }
  }
  return n > 0 ? std::exp(log_sum / static_cast<double>(n)) : 0.0;
}

/// Part 2: run all ten apps through the interpreter with full tracing and
/// write the sample trace + metrics snapshot (the artifacts CI validates).
bool write_sample_artifacts() {
  obs::Tracer::global().clear();
  obs::TracerConfig cfg;
  cfg.sample_every = 1;
  obs::Tracer::global().enable(cfg);
  bool ok = true;
  std::uint64_t seed = 0x0B5EC0DE;
  for (const auto& spec : apps::all_apps()) {
    const auto dopts = [&] {
      DriverOptions o;
      o.program_name = spec.key;
      return o;
    }();
    const CompilationPtr comp = CompilerDriver(dopts).run(spec.source);
    if (!comp->ok()) {
      ok = false;
      continue;
    }
    const auto sched = native::diff::make_schedule(comp->ir(), seed++, 500);
    const auto res = native::diff::run_interp(spec.source, spec.key, sched);
    if (!res.ok) ok = false;
  }
  obs::Tracer::global().disable();
  {
    std::ofstream out("trace.json");
    out << obs::Tracer::global().chrome_json();
    std::printf("\nwrote trace.json (%llu events retained)\n",
                static_cast<unsigned long long>(
                    obs::Tracer::global().retained()));
  }
  {
    std::ofstream out("metrics.prom");
    out << obs::Registry::global().prometheus();
    std::printf("wrote metrics.prom\n");
  }
  return ok;
}

}  // namespace

int main() {
  bench::print_header(
      "Observability overhead",
      "Native batch path: raw vs metrics-on/tracing-off vs 1/256 sampling");

  std::vector<AppRow> rows;
  std::uint64_t seed = 0x0B5011D;
  for (const auto& spec : apps::all_apps()) {
    rows.push_back(run_app(spec, seed++));
  }

  std::printf("  %-8s | %12s | %12s | %12s | %8s | %8s\n", "app", "raw pps",
              "obs-off pps", "obs-256 pps", "off/raw", "256/raw");
  bench::print_rule();
  bool all_ran = true;
  for (const auto& r : rows) {
    if (!r.ok) {
      std::printf("  %-8s | !! %s\n", r.key.c_str(), r.detail.c_str());
      all_ran = false;
      continue;
    }
    std::printf("  %-8s | %12.0f | %12.0f | %12.0f | %8.3f | %8.3f\n",
                r.key.c_str(), r.raw_pps, r.off_pps, r.sampled_pps,
                r.off_ratio(), r.sampled_ratio());
  }
  bench::print_rule();

  const double off_geomean = geomean(rows, &AppRow::off_ratio);
  const double sampled_geomean = geomean(rows, &AppRow::sampled_ratio);
  const bool off_gate = off_geomean >= 1.0 - kMaxDisabledOverhead;
  const bool sampled_gate = sampled_geomean >= 1.0 - kMaxSampledOverhead;
  std::printf("  geomean obs-off/raw: %.3f (gate >= %.2f)  geomean "
              "obs-256/raw: %.3f (gate >= %.2f)\n",
              off_geomean, 1.0 - kMaxDisabledOverhead, sampled_geomean,
              1.0 - kMaxSampledOverhead);

  const bool artifacts_ok = write_sample_artifacts();

  bench::JsonWriter j;
  j.obj_open()
      .field("bench", "bench_obs")
      .field("reps", kReps)
      .field("max_disabled_overhead", kMaxDisabledOverhead)
      .field("max_sampled_overhead", kMaxSampledOverhead);
  j.arr_open("apps");
  for (const auto& r : rows) {
    j.obj_open()
        .field("key", r.key)
        .field("ok", r.ok)
        .field("raw_pps", r.raw_pps)
        .field("obs_off_pps", r.off_pps)
        .field("obs_sampled_pps", r.sampled_pps)
        .field("off_ratio", r.off_ratio())
        .field("sampled_ratio", r.sampled_ratio())
        .obj_close();
  }
  j.arr_close()
      .field("off_geomean", off_geomean)
      .field("sampled_geomean", sampled_geomean)
      .field("trace_events_retained", obs::Tracer::global().retained())
      .field("gate_passed", all_ran && off_gate && sampled_gate &&
                                artifacts_ok)
      .obj_close();
  j.save("BENCH_obs.json");

  if (!all_ran || !off_gate || !sampled_gate || !artifacts_ok) {
    std::fprintf(stderr,
                 "FAIL: observability gate (ran=%d off=%d sampled=%d "
                 "artifacts=%d)\n",
                 all_ran, off_gate, sampled_gate, artifacts_ok);
    return 1;
  }
  return 0;
}
