// Figure 11: development time for a student without Tofino experience.
//
// This is a human study and cannot be re-run mechanically — substitution
// documented in DESIGN.md. The bench (a) reprints the paper's reported
// numbers for reference and (b) measures what *is* mechanical: full compiler
// wall time per application (google-benchmark), supporting the "rapid
// iteration" claim — every app compiles in milliseconds, so the
// write-compile-fix loop is bounded by the human, not the toolchain.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

void BM_CompileApp(benchmark::State& state) {
  const auto& spec =
      lucid::apps::all_apps()[static_cast<std::size_t>(state.range(0))];
  state.SetLabel(spec.key);
  const lucid::CompilerDriver driver;
  for (auto _ : state) {
    auto r = driver.run(spec.source);
    benchmark::DoNotOptimize(r->ok());
  }
}

}  // namespace

BENCHMARK(BM_CompileApp)->DenseRange(0, 9)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  lucid::bench::print_header(
      "Figure 11", "Development time (paper's human study, not re-runnable)");
  std::printf("paper-reported times for a Tofino-novice PhD student:\n");
  std::printf("  %-22s %s\n", "NAT", "25m");
  std::printf("  %-22s %s\n", "RIP", "40m");
  std::printf("  %-22s %s\n", "Dist FW", "25m");
  std::printf("  %-22s %s\n", "Dist FW + Aging", "25m + 30m");
  std::printf("\nsubstitution: the mechanical component measured below is "
              "compiler wall\ntime per app (full pipeline: parse, memop "
              "check, effects, lowering, layout).\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
