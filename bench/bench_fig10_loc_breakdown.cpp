// Figure 10: breakdown of the P4 implementation of each application by
// code category (actions, register actions, tables, headers, parsers),
// against the whole Lucid program's LoC.
//
// The paper's observation to check: for most applications the entire Lucid
// program is shorter than just the P4 register actions + actions, because
// memops are reusable while RegisterActions must be copied per array.
#include "bench_common.hpp"
#include "p4/emit.hpp"

int main() {
  using namespace lucid;
  bench::print_header("Figure 10",
                      "Breakdown of generated P4 LoC by category vs Lucid");

  std::printf("%-10s | %7s | %7s | %8s | %7s | %7s | %7s | %9s\n", "App",
              "actions", "regact", "tables", "headers", "parsers", "other",
              "Lucid");
  bench::print_rule();

  bench::JsonWriter j;
  j.obj_open().field("bench", "fig10_loc_breakdown");
  j.arr_open("apps");
  int lucid_shorter_than_actions = 0;
  for (const auto& spec : apps::all_apps()) {
    const CompilationPtr r = bench::compile_app(spec);
    const p4::P4Program p = p4::emit(*r, spec.key);
    auto cat = [&](p4::LineCategory c) -> std::size_t {
      const auto it = p.loc_by_category.find(c);
      return it == p.loc_by_category.end() ? 0 : it->second;
    };
    const std::size_t actions = cat(p4::LineCategory::Action);
    const std::size_t regact = cat(p4::LineCategory::RegisterAction);
    const std::size_t lucid_loc = count_loc(spec.source);
    std::printf("%-10s | %7zu | %7zu | %8zu | %7zu | %7zu | %7zu | %9zu\n",
                spec.key.c_str(), actions, regact,
                cat(p4::LineCategory::Table), cat(p4::LineCategory::Header),
                cat(p4::LineCategory::Parser),
                cat(p4::LineCategory::Control) +
                    cat(p4::LineCategory::Other),
                lucid_loc);
    j.obj_open()
        .field("app", spec.key)
        .field("p4_actions_loc", actions)
        .field("p4_register_actions_loc", regact)
        .field("lucid_loc", lucid_loc)
        .obj_close();
    if (lucid_loc < actions + regact) ++lucid_shorter_than_actions;
  }
  bench::print_rule();
  std::printf("apps where the whole Lucid program is shorter than the P4 "
              "actions+register-actions alone: %d / 10 (paper: 'most')\n",
              lucid_shorter_than_actions);
  j.arr_close()
      .field("lucid_shorter_than_actions", lucid_shorter_than_actions)
      .obj_close();
  j.save("BENCH_fig10_loc_breakdown.json");
  return 0;
}
