// Figure 14: pausable-queue overhead and accuracy. Left: recirculation
// bandwidth for N concurrently delayed 64B events, baseline (continuous
// recirculation) vs the PFC-pausable delay queue. Right: the relative
// timing error the queue trades for that bandwidth.
//
// Paper shape: the baseline saturates the 100 Gb/s recirculation port by
// ~90 events while the queue stays in single-digit Gb/s (~20x less); the
// queue's delay error grows to ~0.05 relative (release period 100 us).
#include <cstdio>

#include "bench_common.hpp"
#include "sched/scheduler.hpp"

namespace {

using namespace lucid;

struct RunResult {
  double gbps = 0;
  double mean_rel_err = 0;
  double max_rel_err = 0;
};

RunResult run(sched::DelayMode mode, int concurrent_events,
              sim::Time requested_delay, sim::Time horizon) {
  sim::Simulator simulator;
  pisa::SwitchConfig sc;
  sc.id = 1;
  pisa::Switch sw(simulator, sc);
  sched::SchedulerConfig cfg;
  cfg.mode = mode;
  sched::EventScheduler scheduler(sw, cfg);
  scheduler.set_execute([](const pisa::Packet&) {});

  // Bandwidth phase: events delayed "indefinitely".
  for (int i = 0; i < concurrent_events; ++i) {
    sched::GenEvent ev;
    ev.event_id = 0;
    ev.delay_ns = 100 * sim::kSec;
    scheduler.inject(ev);
  }
  const sim::Time t0 = 1 * sim::kMs;  // warm-up before measuring
  simulator.run_until(t0);
  const auto bytes0 = sw.recirc_stats().wire_bytes;
  simulator.run_until(t0 + horizon);
  const auto bytes1 = sw.recirc_stats().wire_bytes;

  RunResult r;
  r.gbps = static_cast<double>(bytes1 - bytes0) * 8.0 /
           static_cast<double>(horizon);  // bits per ns == Gb/s

  // Accuracy phase: fresh fabric, N events with a finite delay. The due
  // times are jittered within one release period so they de-phase from the
  // PFC release grid — otherwise every event would come due exactly at a
  // release and the quantization error would vanish.
  sim::Simulator sim2;
  pisa::Switch sw2(sim2, sc);
  sched::EventScheduler sched2(sw2, cfg);
  sched2.set_execute([](const pisa::Packet&) {});
  sim::Rng jitter(static_cast<std::uint64_t>(concurrent_events) * 31 + 7);
  for (int i = 0; i < concurrent_events; ++i) {
    sched::GenEvent ev;
    ev.event_id = 0;
    ev.delay_ns = requested_delay +
                  jitter.uniform(0, cfg.release_interval_ns - 1);
    sched2.inject(ev);
  }
  sim2.run_until(requested_delay + 10 * sim::kMs);
  double sum = 0;
  double mx = 0;
  std::size_t n = 0;
  for (const auto& [req, err] : sched2.stats().delay_samples) {
    const double rel = static_cast<double>(err) / static_cast<double>(req);
    sum += rel;
    mx = std::max(mx, rel);
    ++n;
  }
  if (n > 0) r.mean_rel_err = sum / static_cast<double>(n);
  r.max_rel_err = mx;
  return r;
}

}  // namespace

int main() {
  std::printf(
      "------------------------------------------------------------------\n"
      "Figure 14 — pausable-queue recirculation overhead and accuracy\n"
      "(64B events on a 100 Gb/s recirc port; release period 100 us,\n"
      " window 5 us; requested delay for the error metric: 2 ms)\n"
      "------------------------------------------------------------------\n");
  std::printf("%6s | %14s | %14s | %11s | %11s\n", "events",
              "baseline Gb/s", "queue Gb/s", "queue err", "base err");
  std::printf(
      "------------------------------------------------------------------\n");

  const sim::Time delay = 2 * sim::kMs;
  const sim::Time horizon = 2 * sim::kMs;
  double base90 = 0;
  double queue90 = 0;
  lucid::bench::JsonWriter j;
  j.obj_open().field("bench", "fig14_delay_queue");
  j.arr_open("points");
  for (const int n : {1, 10, 20, 30, 40, 50, 60, 70, 80, 90}) {
    const RunResult base =
        run(sched::DelayMode::BaselineRecirculation, n, delay, horizon);
    const RunResult queue =
        run(sched::DelayMode::PausableQueue, n, delay, horizon);
    std::printf("%6d | %14.1f | %14.2f | %10.4f | %10.4f\n", n, base.gbps,
                queue.gbps, queue.max_rel_err, base.max_rel_err);
    j.obj_open()
        .field("events", n)
        .field("baseline_gbps", base.gbps)
        .field("queue_gbps", queue.gbps)
        .field("queue_max_rel_err", queue.max_rel_err)
        .field("baseline_max_rel_err", base.max_rel_err)
        .obj_close();
    if (n == 90) {
      base90 = base.gbps;
      queue90 = queue.gbps;
    }
  }
  std::printf(
      "------------------------------------------------------------------\n");
  std::printf("at 90 concurrent events: baseline %.1f Gb/s vs queue %.1f "
              "Gb/s — %.0fx reduction\n(paper: >95 Gb/s saturated vs 5.5 "
              "Gb/s, ~20x; queue error <= ~0.05 at 100 us period)\n",
              base90, queue90, base90 / queue90);
  j.arr_close()
      .field("baseline_gbps_at_90", base90)
      .field("queue_gbps_at_90", queue90)
      .field("bandwidth_reduction_x", base90 / queue90)
      .obj_close();
  j.save("BENCH_fig14_delay_queue.json");
  return 0;
}
