// Shared helpers for the per-figure benchmark binaries.
#pragma once

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "apps/apps.hpp"
#include "core/driver.hpp"
#include "support/strings.hpp"

namespace lucid::bench {

/// Compiles an app through the staged driver, aborting the bench with a
/// message on failure (benches regenerate paper figures; a non-compiling app
/// is a hard error).
inline CompilationPtr compile_app(const apps::AppSpec& spec) {
  DriverOptions opts;
  opts.program_name = spec.key;
  const CompilerDriver driver(opts);
  CompilationPtr r = driver.run(spec.source);
  if (!r->ok()) {
    std::fprintf(stderr, "FATAL: app %s failed to compile:\n%s\n",
                 spec.key.c_str(), r->diags().render().c_str());
    std::exit(1);
  }
  return r;
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void print_header(const std::string& figure,
                         const std::string& caption) {
  print_rule();
  std::printf("%s — %s\n", figure.c_str(), caption.c_str());
  print_rule();
}

// ---------------------------------------------------------------------------
// Machine-readable results: every bench writes a BENCH_<name>.json next to
// the binary (CI merges them into the bench-trajectory artifact).
// ---------------------------------------------------------------------------

inline std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// Minimal streaming JSON writer — just enough structure for the flat
/// objects/arrays the bench result files use. Commas between siblings are
/// managed automatically; keys are only valid inside an object.
class JsonWriter {
 public:
  JsonWriter() { os_.precision(12); }

  JsonWriter& obj_open(const std::string& key = {}) {
    sep(key);
    os_ << '{';
    return *this;
  }
  JsonWriter& obj_close() {
    os_ << '}';
    comma_ = true;
    return *this;
  }
  JsonWriter& arr_open(const std::string& key = {}) {
    sep(key);
    os_ << '[';
    return *this;
  }
  JsonWriter& arr_close() {
    os_ << ']';
    comma_ = true;
    return *this;
  }

  JsonWriter& field(const std::string& key, const std::string& v) {
    sep(key);
    os_ << '"' << json_escape(v) << '"';
    comma_ = true;
    return *this;
  }
  JsonWriter& field(const std::string& key, const char* v) {
    return field(key, std::string(v));
  }
  JsonWriter& field(const std::string& key, bool v) {
    sep(key);
    os_ << (v ? "true" : "false");
    comma_ = true;
    return *this;
  }
  template <typename T,
            std::enable_if_t<std::is_arithmetic_v<T>, int> = 0>
  JsonWriter& field(const std::string& key, T v) {
    sep(key);
    os_ << +v;
    comma_ = true;
    return *this;
  }
  /// Bare array element (no key).
  template <typename T,
            std::enable_if_t<std::is_arithmetic_v<T>, int> = 0>
  JsonWriter& item(T v) {
    sep({});
    os_ << +v;
    comma_ = true;
    return *this;
  }

  [[nodiscard]] std::string str() const { return os_.str(); }

  /// Writes the document (plus a trailing newline) and reports the path on
  /// stdout like the older benches do.
  void save(const std::string& path) const {
    std::ofstream out(path);
    out << os_.str() << "\n";
    std::printf("\nwrote %s\n", path.c_str());
  }

 private:
  void sep(const std::string& key) {
    if (comma_) os_ << ", ";
    comma_ = false;
    if (!key.empty()) os_ << '"' << json_escape(key) << "\": ";
  }

  std::ostringstream os_;
  bool comma_ = false;
};

}  // namespace lucid::bench
