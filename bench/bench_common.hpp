// Shared helpers for the per-figure benchmark binaries.
#pragma once

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "apps/apps.hpp"
#include "core/driver.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"

namespace lucid::bench {

/// Compiles an app through the staged driver, aborting the bench with a
/// message on failure (benches regenerate paper figures; a non-compiling app
/// is a hard error).
inline CompilationPtr compile_app(const apps::AppSpec& spec) {
  DriverOptions opts;
  opts.program_name = spec.key;
  const CompilerDriver driver(opts);
  CompilationPtr r = driver.run(spec.source);
  if (!r->ok()) {
    std::fprintf(stderr, "FATAL: app %s failed to compile:\n%s\n",
                 spec.key.c_str(), r->diags().render().c_str());
    std::exit(1);
  }
  return r;
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void print_header(const std::string& figure,
                         const std::string& caption) {
  print_rule();
  std::printf("%s — %s\n", figure.c_str(), caption.c_str());
  print_rule();
}

// ---------------------------------------------------------------------------
// Machine-readable results: every bench writes a BENCH_<name>.json next to
// the binary (CI merges them into the bench-trajectory artifact). The writer
// lives in support/json.hpp — the tree's single JSON emission path, shared
// with --time-passes=json and the observability snapshots.
// ---------------------------------------------------------------------------

using support::json_escape;
using JsonWriter = support::JsonWriter;

}  // namespace lucid::bench
