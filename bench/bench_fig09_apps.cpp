// Figure 9: the ten applications — Lucid LoC, (generated) P4 LoC, and
// Tofino pipeline stages, side by side with the paper's reported values.
//
// The paper compares hand-written P4 where available and argues (section
// 7.1, via the *Flow calibration point) that compiler-generated P4 is within
// ~15% of hand-written length, so generated-P4 LoC is the same proxy used
// here.
#include "bench_common.hpp"
#include "p4/emit.hpp"

int main() {
  using namespace lucid;
  bench::print_header(
      "Figure 9",
      "Applications: LoC in Lucid vs P4, and Tofino pipeline stages");

  std::printf("%-10s | %11s | %11s | %11s | %11s | %9s | %9s\n", "App",
              "Lucid LoC", "paper Lucid", "P4 LoC", "paper P4", "stages",
              "paper stg");
  bench::print_rule();

  bench::JsonWriter j;
  j.obj_open().field("bench", "fig09_apps");
  j.arr_open("apps");
  double loc_ratio_sum = 0;
  int n = 0;
  for (const auto& spec : apps::all_apps()) {
    const CompilationPtr r = bench::compile_app(spec);
    const p4::P4Program p4prog = p4::emit(*r, spec.key);
    const std::size_t lucid_loc = count_loc(spec.source);
    const std::size_t p4_loc = p4prog.total_loc();
    std::printf("%-10s | %11zu | %11d | %11zu | %11d | %9d | %9d\n",
                spec.key.c_str(), lucid_loc, spec.paper_lucid_loc, p4_loc,
                spec.paper_p4_loc, r->layout_stats().optimized_stages,
                spec.paper_stages);
    j.obj_open()
        .field("app", spec.key)
        .field("lucid_loc", lucid_loc)
        .field("p4_loc", p4_loc)
        .field("stages", r->layout_stats().optimized_stages)
        .obj_close();
    loc_ratio_sum += static_cast<double>(p4_loc) /
                     static_cast<double>(lucid_loc);
    ++n;
  }
  bench::print_rule();
  const double mean_ratio = loc_ratio_sum / n;
  std::printf("mean P4/Lucid LoC ratio: %.1fx  (paper: ~10x, range 5-10x+)\n",
              mean_ratio);
  std::printf("all apps compile to <= 12 Tofino-like stages: see 'stages' "
              "column\n");
  j.arr_close().field("mean_p4_lucid_loc_ratio", mean_ratio).obj_close();
  j.save("BENCH_fig09_apps.json");
  return 0;
}
