// Ablation: sensitivity of the layout to the resource model's per-stage
// budgets (a design-choice study DESIGN.md calls out). Two sweeps:
//
//   1. stateful ALUs per stage (Tofino 1 has 4) — binds apps with many
//      independent arrays;
//   2. logical tables per stage — binds apps with many mutually exclusive
//      merged tables.
//
// The interesting observation: most apps are *dependence*-bound (stage
// count barely moves), which is exactly why the paper's greedy merger works
// — the hard constraints are dataflow chains, not per-stage capacity.
#include "bench_common.hpp"

namespace {

int stages_with(const lucid::apps::AppSpec& spec,
                const lucid::opt::ResourceModel& model) {
  lucid::DriverOptions opts;
  opts.model = model;
  const lucid::CompilerDriver driver(opts);
  const auto r = driver.run(spec.source);
  return r->ok() ? r->layout_stats().optimized_stages : -1;
}

}  // namespace

int main() {
  using namespace lucid;
  bench::print_header("Ablation",
                      "Layout sensitivity to per-stage resource budgets");

  bench::JsonWriter j;
  j.obj_open().field("bench", "ablation_model");
  j.arr_open("salu_sweep");
  std::printf("stage count vs stateful ALUs per stage (tables/stage = 8):\n");
  std::printf("%-10s | %7s | %7s | %7s | %7s\n", "App", "salu=1", "salu=2",
              "salu=4", "salu=8");
  bench::print_rule(52);
  for (const auto& spec : apps::all_apps()) {
    std::printf("%-10s |", spec.key.c_str());
    j.obj_open().field("app", spec.key).arr_open("stages");
    for (const int salus : {1, 2, 4, 8}) {
      opt::ResourceModel m;
      m.salus_per_stage = salus;
      const int stages = stages_with(spec, m);
      std::printf(" %7d |", stages);
      j.item(stages);
    }
    j.arr_close().obj_close();
    std::printf("\n");
  }
  j.arr_close();

  j.arr_open("table_sweep");
  std::printf("\nstage count vs logical tables per stage (salus = 4):\n");
  std::printf("%-10s | %7s | %7s | %7s | %7s\n", "App", "tbl=2", "tbl=4",
              "tbl=8", "tbl=16");
  bench::print_rule(52);
  for (const auto& spec : apps::all_apps()) {
    std::printf("%-10s |", spec.key.c_str());
    j.obj_open().field("app", spec.key).arr_open("stages");
    for (const int tables : {2, 4, 8, 16}) {
      opt::ResourceModel m;
      m.tables_per_stage = tables;
      const int stages = stages_with(spec, m);
      std::printf(" %7d |", stages);
      j.item(stages);
    }
    j.arr_close().obj_close();
    std::printf("\n");
  }
  j.arr_close();

  j.arr_open("member_sweep");
  std::printf("\nstage count vs merged-table member budget (default 12):\n");
  std::printf("%-10s | %7s | %7s | %7s\n", "App", "mem=2", "mem=6",
              "mem=12");
  bench::print_rule(42);
  for (const auto& spec : apps::all_apps()) {
    std::printf("%-10s |", spec.key.c_str());
    j.obj_open().field("app", spec.key).arr_open("stages");
    for (const int members : {2, 6, 12}) {
      opt::ResourceModel m;
      m.members_per_table = members;
      const int stages = stages_with(spec, m);
      std::printf(" %7d |", stages);
      j.item(stages);
    }
    j.arr_close().obj_close();
    std::printf("\n");
  }
  j.arr_close().obj_close();
  j.save("BENCH_ablation_model.json");
  return 0;
}
