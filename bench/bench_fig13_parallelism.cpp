// Figure 13: parallelization — the number of atomic operations (Lucid
// statements) the compiler mapped into each pipeline stage of the optimized
// layout. Paper: 2-13 per stage across the applications.
#include "bench_common.hpp"

int main() {
  using namespace lucid;
  bench::print_header(
      "Figure 13",
      "ALU instructions (atomic tables) per stage in optimized layouts");

  std::printf("%-10s | %6s | %6s | %6s | %s\n", "App", "min", "avg", "max",
              "per-stage profile");
  bench::print_rule();
  bench::JsonWriter j;
  j.obj_open().field("bench", "fig13_parallelism");
  j.arr_open("apps");
  int global_max = 0;
  for (const auto& spec : apps::all_apps()) {
    const CompilationPtr r = bench::compile_app(spec);
    const auto& ops = r->layout_stats().ops_per_stage;
    int mn = 1 << 30;
    int mx = 0;
    int total = 0;
    std::string profile;
    for (const int o : ops) {
      mn = std::min(mn, o);
      mx = std::max(mx, o);
      total += o;
      profile += std::to_string(o) + " ";
    }
    global_max = std::max(global_max, mx);
    std::printf("%-10s | %6d | %6.1f | %6d | %s\n", spec.key.c_str(),
                ops.empty() ? 0 : mn,
                ops.empty() ? 0.0
                            : static_cast<double>(total) /
                                  static_cast<double>(ops.size()),
                mx, profile.c_str());
    j.obj_open().field("app", spec.key).field("max_ops_per_stage", mx);
    j.arr_open("ops_per_stage");
    for (const int o : ops) j.item(o);
    j.arr_close().obj_close();
  }
  bench::print_rule();
  std::printf("max operations packed into one stage across apps: %d "
              "(paper: up to 13)\n",
              global_max);
  j.arr_close().field("global_max_ops_per_stage", global_max).obj_close();
  j.save("BENCH_fig13_parallelism.json");
  return 0;
}
