// Layout-engine benchmark: what does the two-phase split (model-independent
// LayoutAnalysis + index-based greedy merger) buy on the sweep workload?
//
// For each of the ten paper apps, lay the program out against the PR 2 sweep
// grid (stages=4,8,12,16 x salus=2,4 -> 8 variants) two ways:
//
//   cold    every variant runs opt::layout(ir, model): branch inlining,
//           dependency edges, ASAP levels, item sorting, and the
//           disjointness matrix are recomputed per variant — what each
//           sweep variant paid before the split
//   shared  opt::analyze_layout(ir) once, then opt::layout(analysis, model)
//           per variant — what a sweep pays now
//
// Both paths must produce byte-identical Pipeline::str() output for every
// variant (the bench aborts otherwise — it doubles as a differential test).
// Results go to stdout and to machine-readable BENCH_layout.json (working
// directory): per-app cold/shared totals, per-app restart counts, the
// driver's Layout-stage wall time, and the overall speedup, so the perf
// trajectory is trackable across PRs. CI runs this in RelWithDebInfo and
// uploads the JSON as an artifact.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/sweep.hpp"
#include "support/chrono.hpp"

namespace {

using Clock = lucid::SteadyClock;
using lucid::ms_since;
using lucid::bench::print_header;
using lucid::bench::print_rule;

const char* kGrid = "stages=4,8,12,16;salus=2,4";
constexpr int kReps = 40;  // repetitions per measurement (layouts are fast)

struct AppRow {
  std::string key;
  double cold_ms = 0;    // kReps x (8 variants x full layout)
  double shared_ms = 0;  // kReps x (1 analysis + 8 merges)
  double driver_layout_ms = 0;  // one cold driver compile's Layout record
  long restarts = 0;            // summed over the 8 variants (one pass)
  [[nodiscard]] double speedup() const {
    return shared_ms > 0 ? cold_ms / shared_ms : 0.0;
  }
};

// Escaping comes from the tree-wide JSON path (support/json.hpp via
// bench_common.hpp); only the pretty-printed layout is bespoke here.
using lucid::bench::json_escape;

void write_json(const std::vector<AppRow>& rows, const AppRow& totals,
                std::size_t variant_count, const char* path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "WARNING: cannot write %s\n", path);
    return;
  }
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  const auto row = [&os](const AppRow& r) {
    os << "    {\"app\": \"" << json_escape(r.key) << "\", "
       << "\"cold_ms\": " << r.cold_ms << ", "
       << "\"shared_ms\": " << r.shared_ms << ", "
       << "\"driver_layout_ms\": " << r.driver_layout_ms << ", "
       << "\"restarts\": " << r.restarts << ", "
       << "\"speedup\": " << r.speedup() << "}";
  };
  os << "{\n"
     << "  \"bench\": \"bench_layout\",\n"
     << "  \"grid\": \"" << json_escape(kGrid) << "\",\n"
     << "  \"variants\": " << variant_count << ",\n"
     << "  \"reps\": " << kReps << ",\n"
     << "  \"apps\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    row(rows[i]);
    os << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  os << "  ],\n  \"totals\": ";
  row(totals);
  os << ",\n  \"speedup_shared_over_cold\": " << totals.speedup() << "\n"
     << "}\n";
  out << os.str();
  std::printf("\nwrote %s\n", path);
}

AppRow measure(const lucid::apps::AppSpec& spec,
               const std::vector<lucid::SweepVariant>& variants) {
  AppRow r;
  r.key = spec.key;

  // Front end once (untimed here; bench_sweep covers it). The driver's own
  // Layout record doubles as the end-to-end cold number.
  const lucid::CompilationPtr comp = lucid::bench::compile_app(spec);
  r.driver_layout_ms = comp->record(lucid::Stage::Layout).wall_ms;
  const lucid::ir::ProgramIR& ir = comp->ir();

  // Differential guard + restart counts: cold and shared must agree
  // byte-for-byte on every variant.
  const auto analysis = lucid::opt::analyze_layout(ir);
  for (const lucid::SweepVariant& v : variants) {
    lucid::DiagnosticEngine d1;
    lucid::DiagnosticEngine d2;
    const lucid::opt::Pipeline cold = lucid::opt::layout(ir, v.model, d1);
    const lucid::opt::Pipeline shared =
        lucid::opt::layout(analysis, v.model, d2);
    if (cold.str() != shared.str()) {
      std::fprintf(stderr,
                   "FATAL: %s/%s: shared-analysis layout diverged from cold\n",
                   spec.key.c_str(), v.label.c_str());
      std::exit(1);
    }
    r.restarts += shared.restarts;
  }

  const auto t_cold = Clock::now();
  for (int rep = 0; rep < kReps; ++rep) {
    for (const lucid::SweepVariant& v : variants) {
      lucid::DiagnosticEngine diags;
      const lucid::opt::Pipeline p = lucid::opt::layout(ir, v.model, diags);
      if (!p.feasible && p.stage_count() == 0) std::exit(1);  // keep p live
    }
  }
  r.cold_ms = ms_since(t_cold);

  const auto t_shared = Clock::now();
  for (int rep = 0; rep < kReps; ++rep) {
    const auto an = lucid::opt::analyze_layout(ir);  // once per sweep
    for (const lucid::SweepVariant& v : variants) {
      lucid::DiagnosticEngine diags;
      const lucid::opt::Pipeline p = lucid::opt::layout(an, v.model, diags);
      if (!p.feasible && p.stage_count() == 0) std::exit(1);
    }
  }
  r.shared_ms = ms_since(t_shared);
  return r;
}

}  // namespace

int main() {
  const auto variants = *lucid::parse_sweep_grid(kGrid);

  // Warm up allocators and code paths so the first timed row is clean.
  (void)measure(lucid::apps::all_apps().front(), variants);

  print_header("bench_layout",
               "two-phase layout: cold (analysis per variant) vs shared "
               "(analysis once) over " + std::string(kGrid));
  std::printf("%d reps x %zu variants per measurement\n\n", kReps,
              variants.size());
  std::printf("%-8s %10s %10s %9s %9s   %s\n", "app", "cold ms", "shared ms",
              "restarts", "drv ms", "speedup (cold/shared)");

  std::vector<AppRow> rows;
  AppRow totals;
  totals.key = "total";
  for (const lucid::apps::AppSpec& spec : lucid::apps::all_apps()) {
    const AppRow r = measure(spec, variants);
    totals.cold_ms += r.cold_ms;
    totals.shared_ms += r.shared_ms;
    totals.driver_layout_ms += r.driver_layout_ms;
    totals.restarts += r.restarts;
    std::printf("%-8s %10.2f %10.2f %9ld %9.3f   %.2fx\n", r.key.c_str(),
                r.cold_ms, r.shared_ms, r.restarts, r.driver_layout_ms,
                r.speedup());
    rows.push_back(r);
  }
  print_rule();
  std::printf("%-8s %10.2f %10.2f %9ld %9.3f   %.2fx\n", "total",
              totals.cold_ms, totals.shared_ms, totals.restarts,
              totals.driver_layout_ms, totals.speedup());
  std::printf(
      "\ncold   = every variant recomputes the model-independent analysis\n"
      "shared = one opt::analyze_layout, 8 index-based merges "
      "(the sweep path)\n");
  if (totals.speedup() >= 2.0) {
    std::printf("shared-analysis layout beats cold by %.2fx (target: 2x)\n",
                totals.speedup());
  } else {
    std::printf("WARNING: shared-analysis speedup %.2fx below the 2x target\n",
                totals.speedup());
  }
  write_json(rows, totals, variants.size(), "BENCH_layout.json");
  return 0;
}
