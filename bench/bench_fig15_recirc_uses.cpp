// Figure 15: how the example applications use recirculation — data-structure
// maintenance (timed scans), flow setup (per-new-flow installs), and state
// synchronization (replica updates) — with the asymptotic rate class per use
// and measured recirculation counts from short interpreter runs.
#include "bench_common.hpp"
#include "interp/testbed.hpp"
#include "workload/workload.hpp"

namespace {

using namespace lucid;

struct Measured {
  std::uint64_t recirculations = 0;
  std::uint64_t forwarded = 0;  // event packets sent into the fabric
};

/// Measured recirculations for a short, representative run of one app.
Measured measure(const apps::AppSpec& spec) {
  interp::TestbedConfig cfg;
  cfg.switch_ids = {1, 2, 3, 9};
  interp::Testbed tb(spec.source, cfg);
  if (!tb.ok()) return {};

  if (spec.key == "SFW") {
    tb.node(1).inject("scan1", {0});
    const auto flows = workload::distinct_flows(100, 200, 3);
    for (const auto& f : flows) tb.node(1).inject("pkt_out", {f.src, f.dst});
  } else if (spec.key == "RR") {
    tb.node(1).inject("probe_timer", {0});
    tb.node(1).inject("check_route", {0});
  } else if (spec.key == "DNS") {
    tb.node(1).inject("decay_step", {0});
    for (int i = 0; i < 50; ++i) tb.node(1).inject("dns_req", {7, 8, i});
  } else if (spec.key == "StarFlow") {
    for (int f = 0; f < 20; ++f) {
      for (int s = 0; s < 4; ++s) tb.node(1).inject("pkt", {f + 100, s});
    }
  } else if (spec.key == "SRO") {
    for (int i = 0; i < 20; ++i) tb.node(1).inject("write", {i, i * 7});
  } else if (spec.key == "DFW" || spec.key == "DFWA") {
    for (int i = 0; i < 20; ++i) {
      tb.node(1).inject("pkt_out", {i + 1, i + 50});
    }
    if (spec.key == "DFWA") tb.node(1).inject("age_step", {0});
  } else if (spec.key == "RIP") {
    tb.node(1).inject("boot", {0});
    tb.node(1).inject("adv_timer", {0});
  } else if (spec.key == "NAT") {
    for (int i = 0; i < 20; ++i) tb.node(1).inject("pkt_out", {i, 5000 + i});
  } else if (spec.key == "CM") {
    for (int i = 0; i < 50; ++i) tb.node(1).inject("pkt", {i % 9});
    tb.node(1).inject("export_step", {0});
  }
  tb.settle(20 * sim::kMs);
  Measured m;
  for (const int id : {1, 2, 3, 9}) {
    m.recirculations += tb.switch_at(id).recirculations();
    m.forwarded += tb.sched_at(id).stats().forwarded;
  }
  return m;
}

}  // namespace

int main() {
  bench::print_header("Figure 15",
                      "Recirculation uses: class, rate, and a measured "
                      "20 ms run");
  std::printf("use class                | rate class              | apps\n");
  bench::print_rule();
  std::printf("data-struct maintenance  | O(entries/scan interval)| ");
  for (const auto& s : apps::all_apps()) {
    if (s.recirc_maintenance) std::printf("%s ", s.key.c_str());
  }
  std::printf("\nflow setup               | E[O(flow rate)]         | ");
  for (const auto& s : apps::all_apps()) {
    if (s.recirc_flow_setup) std::printf("%s ", s.key.c_str());
  }
  std::printf("\nstate synchronization    | O(update rate)          | ");
  for (const auto& s : apps::all_apps()) {
    if (s.recirc_state_sync) std::printf("%s ", s.key.c_str());
  }
  std::printf("\n");
  bench::print_rule();
  std::printf("(paper lists: maintenance -> SFW RR DFW CM DNS RIP; flow "
              "setup -> SFW NAT *Flow RR;\n state sync -> SRO DFW)\n\n");

  std::printf("measured event-packet traffic in a representative 20 ms "
              "run\n(recirculations at the generating switch; forwarded = "
              "sync/reply events\nsent into the fabric — how state-sync "
              "apps spend their budget):\n");
  std::printf("%-10s | %14s | %10s\n", "App", "recirculations", "forwarded");
  bench::print_rule(44);
  bench::JsonWriter j;
  j.obj_open().field("bench", "fig15_recirc_uses");
  j.arr_open("apps");
  for (const auto& spec : apps::all_apps()) {
    const Measured m = measure(spec);
    std::printf("%-10s | %14llu | %10llu\n", spec.key.c_str(),
                static_cast<unsigned long long>(m.recirculations),
                static_cast<unsigned long long>(m.forwarded));
    j.obj_open()
        .field("app", spec.key)
        .field("recirculations", m.recirculations)
        .field("forwarded", m.forwarded)
        .obj_close();
  }
  j.arr_close().obj_close();
  j.save("BENCH_fig15_recirc_uses.json");
  return 0;
}
