#!/usr/bin/env python3
"""Validate observability artifacts: Chrome trace JSON and Prometheus text.

Usage:
    tools/validate_obs.py trace FILE   # Chrome trace-event JSON (Perfetto)
    tools/validate_obs.py prom FILE    # Prometheus text exposition format

``trace`` checks what Perfetto / chrome://tracing require to load the file:
a JSON object with a ``traceEvents`` list whose entries carry name/ph/ts
(plus dur for complete events), with numeric timestamps and known phases.

``prom`` checks the text exposition grammar the tree's Registry emits:
HELP/TYPE comment lines, legal metric names, numeric sample values, and —
for histograms — cumulative (monotone non-decreasing) ``le`` buckets whose
``+Inf`` bucket equals ``_count``.

Exit status: 0 valid, 1 invalid (first failure printed), 2 usage/IO error.
"""

import json
import math
import re
import sys

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
KNOWN_PHASES = {"X", "i", "B", "E", "M", "C", "b", "e", "n", "s", "t", "f"}


def fail(message):
    print(f"INVALID: {message}", file=sys.stderr)
    sys.exit(1)


def read_file(path):
    try:
        with open(path, encoding="utf-8") as handle:
            return handle.read()
    except OSError as exc:
        print(f"ERROR: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)


def validate_trace(path):
    text = read_file(path)
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        fail(f"not valid JSON: {exc}")
    if not isinstance(doc, dict):
        fail("top level is not an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail('missing "traceEvents" list')
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            fail(f"{where} is not an object")
        for required in ("name", "ph", "ts"):
            if required not in event:
                fail(f'{where} missing "{required}"')
        if not isinstance(event["name"], str):
            fail(f"{where}.name is not a string")
        phase = event["ph"]
        if phase not in KNOWN_PHASES:
            fail(f"{where}.ph {phase!r} is not a known phase")
        if not isinstance(event["ts"], (int, float)) or isinstance(
            event["ts"], bool
        ):
            fail(f"{where}.ts is not numeric")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool):
                fail(f'{where} (complete event) missing numeric "dur"')
            if dur < 0:
                fail(f"{where}.dur is negative")
    phases = sorted({e["ph"] for e in events})
    print(
        f"OK: {path}: {len(events)} trace events "
        f"(phases: {', '.join(phases) if phases else 'none'})"
    )


def parse_value(raw, where):
    if raw == "+Inf":
        return math.inf
    try:
        return float(raw)
    except ValueError:
        fail(f"{where}: sample value {raw!r} is not numeric")
    return None  # unreachable


def validate_prom(path):
    text = read_file(path)
    samples = 0
    typed = {}  # metric family -> declared type
    # histogram family -> list of (le-upper-bound, cumulative count)
    buckets = {}
    counts = {}  # histogram family -> value of <family>_count
    for line_no, line in enumerate(text.splitlines(), start=1):
        where = f"{path}:{line_no}"
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                fail(f"{where}: malformed comment line {line!r}")
            if not METRIC_NAME_RE.match(parts[2]):
                fail(f"{where}: illegal metric name {parts[2]!r}")
            if parts[1] == "TYPE":
                if len(parts) < 4 or parts[3] not in (
                    "counter",
                    "gauge",
                    "histogram",
                    "summary",
                    "untyped",
                ):
                    fail(f"{where}: bad TYPE line {line!r}")
                typed[parts[2]] = parts[3]
            continue
        match = SAMPLE_RE.match(line)
        if match is None:
            fail(f"{where}: malformed sample line {line!r}")
        name = match.group("name")
        value = parse_value(match.group("value"), where)
        samples += 1
        if name.endswith("_bucket"):
            family = name[: -len("_bucket")]
            labels = match.group("labels") or ""
            le_match = re.search(r'le="([^"]*)"', labels)
            if le_match is None:
                fail(f'{where}: histogram bucket without an le="" label')
            le_raw = le_match.group(1)
            upper = math.inf if le_raw == "+Inf" else parse_value(le_raw, where)
            # A labeled family is one series per label set; key the cumulative
            # check on (family, labels-minus-le) so shard="0" and shard="1"
            # buckets validate independently.
            rest = ",".join(
                part
                for part in labels.split(",")
                if part and not part.startswith('le="')
            )
            series = f"{family}{{{rest}}}" if rest else family
            buckets.setdefault(series, []).append((upper, value, line_no))
        elif name.endswith("_count"):
            series = name[: -len("_count")]
            labels = match.group("labels") or ""
            if labels:
                series = f"{series}{{{labels}}}"
            counts[series] = (value, line_no)
    for family, rows in buckets.items():
        last = -math.inf
        prev_upper = -math.inf
        for upper, value, line_no in rows:
            where = f"{path}:{line_no}"
            if upper <= prev_upper:
                fail(f"{where}: {family} le bounds are not increasing")
            if value < last:
                fail(f"{where}: {family} buckets are not cumulative")
            prev_upper, last = upper, value
        if rows[-1][0] != math.inf:
            fail(f"{family}: last bucket is not le=\"+Inf\"")
        if family not in counts:
            fail(f"{family}: histogram without a _count sample")
        if rows[-1][1] != counts[family][0]:
            fail(
                f"{family}: +Inf bucket {rows[-1][1]:g} != "
                f"_count {counts[family][0]:g}"
            )
    if samples == 0:
        fail(f"{path}: no samples found")
    print(
        f"OK: {path}: {samples} samples, {len(typed)} metric families "
        f"({len(buckets)} histograms)"
    )


def main():
    if len(sys.argv) != 3 or sys.argv[1] not in ("trace", "prom"):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    if sys.argv[1] == "trace":
        validate_trace(sys.argv[2])
    else:
        validate_prom(sys.argv[2])


if __name__ == "__main__":
    main()
