#!/usr/bin/env python3
"""Compare two merged bench summaries (BENCH_summary.json) metric by metric.

Usage:
    tools/bench_compare.py PREVIOUS.json CURRENT.json [--fail-on-regression]

Both files are the artifact perf-smoke merges from the per-bench
BENCH_*.json documents: {"bench_layout": {...}, "bench_native": {...}, ...}.
Every numeric leaf shared by both files is compared; a metric whose relative
change exceeds its threshold is reported.

Thresholds are per-metric-kind, not global: wall-clock and throughput
numbers (``*_ms``, ``*_s``, ``*_pps``, ``*speedup*``, ...) jitter hard on
shared CI runners, so they get a loose 50% band; structural metrics (stage
counts, LOC, restarts, passes — anything the compiler deterministically
produces) get a tight 25% band, where a move almost always means a real
behavior change.

Exit status:
    0   compared cleanly (regressions are printed but warn-only by default)
    1   --fail-on-regression was given and at least one metric regressed
    2   a file is missing, unreadable, malformed JSON, or not an object

The CI workflow invokes this warn-only (no --fail-on-regression): the hard
perf gates live inside the benches themselves; this is the cross-run radar.
Exit 2 is always fatal there — a malformed summary means the merge step or
an upstream bench broke, which must not pass silently.
"""

import argparse
import json
import sys

# Substrings marking a timing/throughput metric (loose threshold). Checked
# against the final path component, lowercased.
NOISY_MARKERS = (
    "_ms",
    "_s",
    "_ns",
    "_us",
    "pps",
    "gbps",
    "speedup",
    "wall",
    "ratio",
    "geomean",
    "overhead",
    "latency",
    "scaling",
)

NOISY_THRESHOLD = 0.50
STRICT_THRESHOLD = 0.25


def flatten(doc, prefix=""):
    """Numeric leaves of a JSON document as {dotted.path: float}."""
    out = {}
    if isinstance(doc, dict):
        for key, value in doc.items():
            out.update(flatten(value, f"{prefix}{key}."))
    elif isinstance(doc, list):
        for index, value in enumerate(doc):
            out.update(flatten(value, f"{prefix}{index}."))
    elif isinstance(doc, (int, float)) and not isinstance(doc, bool):
        out[prefix[:-1]] = float(doc)
    return out


def threshold_for(key):
    leaf = key.rsplit(".", 1)[-1].lower()
    if any(marker in leaf for marker in NOISY_MARKERS):
        return NOISY_THRESHOLD
    return STRICT_THRESHOLD


def load_summary(path):
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except OSError as exc:
        print(f"ERROR: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    except json.JSONDecodeError as exc:
        print(f"ERROR: {path} is not valid JSON: {exc}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(doc, dict) or not doc:
        print(f"ERROR: {path} is not a non-empty JSON object", file=sys.stderr)
        sys.exit(2)
    return doc


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("previous", help="baseline BENCH_summary.json")
    parser.add_argument("current", help="candidate BENCH_summary.json")
    parser.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit 1 when any metric moves past its threshold "
        "(default: report and exit 0)",
    )
    args = parser.parse_args()

    prev = flatten(load_summary(args.previous))
    cur = flatten(load_summary(args.current))
    if not prev or not cur:
        print("ERROR: no numeric metrics found to compare", file=sys.stderr)
        sys.exit(2)

    shared = sorted(prev.keys() & cur.keys())
    moved = []
    for key in shared:
        old, new = prev[key], cur[key]
        if old == 0.0:
            continue
        delta = (new - old) / abs(old)
        limit = threshold_for(key)
        if abs(delta) > limit:
            moved.append((key, old, new, delta, limit))

    only_prev = len(prev.keys() - cur.keys())
    only_cur = len(cur.keys() - prev.keys())
    print(
        f"compared {len(shared)} shared metrics "
        f"({only_prev} only in previous, {only_cur} only in current)"
    )
    for key, old, new, delta, limit in moved:
        print(f"  {key}: {old:g} -> {new:g} ({delta:+.0%}, limit ±{limit:.0%})")
    if moved:
        print(f"{len(moved)} metric(s) moved past their threshold")
    else:
        print("no shared metric moved past its threshold")

    if moved and args.fail_on_regression:
        sys.exit(1)
    sys.exit(0)


if __name__ == "__main__":
    main()
